// Epoch-swapped rank snapshots: the serving side of the engine's
// RankSnapshotSink contract (DESIGN.md §12).
//
// Three layers:
//  - RankSnapshot: one immutable, epoch-stamped cut of (ranks, ownership)
//    plus a per-shard top-K index. Never mutated after build — readers on
//    any thread query it lock-free once they hold a shared_ptr.
//  - SnapshotStore: the RankSnapshotSink implementation. Double-buffered:
//    the publisher (simulation thread) builds into whichever buffer no
//    reader still holds and atomically swaps it in; readers acquire() the
//    current snapshot under a mutex held only for the pointer copy.
//  - RankServer: a thread-safe query façade over the store that counts
//    queries, torn-epoch reads (the machine-checked "never happens"
//    tripwire), stale reads, and unavailability.
//
// Determinism: a snapshot is a pure function of (epoch, time, ranks,
// assignment, capacity) — the per-shard indexes and serialize() bytes are
// bitwise-identical across thread-pool sizes whenever the engine's rank
// vectors are, which the engine guarantees.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "engine/engine_types.hpp"
#include "serve/topk.hpp"
#include "util/thread_annotations.hpp"

namespace p2prank::obs {
class MetricsRegistry;
}  // namespace p2prank::obs

namespace p2prank::serve {

/// Wire-format tag of RankSnapshot::serialize (bump on layout change).
inline constexpr std::string_view kSnapshotFormat = "p2prank-snapshot-v1";

/// Per-shard slice of a snapshot: the shard's best `capacity` pages, sorted
/// by ranks_before, stamped with the owning snapshot's epoch. The stamp is
/// how the torn-read tripwire works: a reader that ever saw shard stamps
/// disagreeing with the snapshot epoch caught a mixed-epoch state, which
/// the double-buffer protocol promises is impossible.
struct ShardIndex {
  std::uint64_t epoch = 0;
  std::uint64_t pages = 0;  ///< pages owned by this shard at the epoch
  std::vector<TopKEntry> top;
};

/// One immutable cut of the engine: global ranks, page → shard ownership,
/// and per-shard top-K indexes, all stamped with one epoch. Construction
/// happens only inside SnapshotStore::publish (simulation thread); after
/// that every member is const-in-practice and safe to read concurrently.
class RankSnapshot {
 public:
  RankSnapshot() = default;

  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }
  /// Virtual time of the publish that produced this snapshot.
  [[nodiscard]] double publish_time() const noexcept { return time_; }
  [[nodiscard]] std::size_t num_pages() const noexcept { return ranks_.size(); }
  [[nodiscard]] std::uint32_t num_shards() const noexcept { return num_shards_; }
  /// Per-shard index depth: shard_top_k / merge are exact up to this k.
  [[nodiscard]] std::size_t top_k_capacity() const noexcept { return capacity_; }

  [[nodiscard]] double rank(std::uint32_t page) const { return ranks_[page]; }
  [[nodiscard]] std::uint32_t shard_of(std::uint32_t page) const {
    return shard_of_[page];
  }
  [[nodiscard]] std::span<const double> ranks() const noexcept { return ranks_; }
  [[nodiscard]] const ShardIndex& shard(std::uint32_t s) const {
    return shards_[s];
  }

  /// Global top-k, best first (ranks_before order). k <= top_k_capacity()
  /// is a K-way merge of the per-shard indexes; larger k (up to k = N)
  /// falls back to sorting the full rank vector, so it is exact for every
  /// k — just not index-speed.
  [[nodiscard]] std::vector<TopKEntry> top_k(std::size_t k) const;

  /// Shard-local top-k (clamped to the index depth and the shard size).
  [[nodiscard]] std::vector<TopKEntry> shard_top_k(std::uint32_t s,
                                                   std::size_t k) const;

  /// True iff every shard's epoch stamp equals the snapshot epoch — the
  /// torn-read tripwire readers check on every query.
  [[nodiscard]] bool epoch_consistent() const noexcept;

  /// Deterministic text dump (header "p2prank-snapshot-v1", doubles at
  /// max round-trip precision): equal snapshots produce equal bytes, the
  /// lever the cross-pool determinism tests pull on.
  void serialize(std::ostream& out) const;

 private:
  friend class SnapshotStore;

  /// (Re)build this object in place, reusing vector capacity — the
  /// double-buffer's reuse path goes through here.
  void build(std::uint64_t epoch, double time, std::span<const double> ranks,
             std::span<const std::uint32_t> assignment,
             std::uint32_t num_shards, std::size_t capacity);

  /// build() from per-group views (the engine's publish path): scatters and
  /// indexes in one blocked pass, reading and writing each byte once — and
  /// skipping the dense shard-map rewrite entirely when this buffer was
  /// last built under the same nonzero ownership_version. Produces
  /// bit-identical state to build() on the materialized vectors.
  void build_groups(std::uint64_t epoch, double time,
                    std::span<const engine::GroupCut> groups,
                    std::uint32_t num_pages, std::uint64_t ownership_version,
                    std::size_t capacity);

  /// Shared tail of build(): stamp the header fields and rebuild the
  /// per-shard top-K indexes from ranks_/shard_of_.
  void index(std::uint64_t epoch, double time, std::uint32_t num_shards,
             std::size_t capacity);

  std::uint64_t epoch_ = 0;
  double time_ = 0.0;
  std::vector<double> ranks_;
  std::vector<std::uint32_t> shard_of_;
  std::vector<ShardIndex> shards_;
  std::uint32_t num_shards_ = 0;
  std::size_t capacity_ = 0;
  /// Ownership version shard_of_ was last built under (0 = must rebuild).
  std::uint64_t ownership_version_ = 0;
  /// Per-shard admission thresholds and merge cursors, live only inside
  /// build()/build_groups() — publisher scratch kept as members so the
  /// buffer-reuse path allocates nothing.
  std::vector<double> admit_scratch_;
  std::vector<std::size_t> cursor_scratch_;
};

/// Double-buffered snapshot publisher + reader handoff. Exactly one
/// publisher (the simulation thread, via the RankSnapshotSink calls);
/// any number of reader threads calling acquire()/is_stale().
class SnapshotStore final : public engine::RankSnapshotSink {
 public:
  /// `top_k_capacity` is the per-shard index depth built at every publish.
  explicit SnapshotStore(std::size_t top_k_capacity = 16);

  // RankSnapshotSink (simulation thread only).
  void publish(double time, std::span<const double> ranks,
               std::span<const std::uint32_t> assignment,
               std::uint32_t num_shards) override;
  void publish_groups(double time, std::span<const engine::GroupCut> groups,
                      std::uint32_t num_pages,
                      std::uint64_t ownership_version) override;
  void invalidate(double time) override;

  /// Current snapshot, or null before the first publish. The returned
  /// shared_ptr keeps the snapshot alive and immutable for as long as the
  /// reader holds it, however many publishes happen meanwhile.
  [[nodiscard]] std::shared_ptr<const RankSnapshot> acquire() const;

  /// True iff `snap` predates the last invalidate() — a restore rolled the
  /// engine back past it. Stale snapshots still serve (availability over
  /// freshness); callers surface the flag instead of failing.
  [[nodiscard]] bool is_stale(const RankSnapshot& snap) const {
    return snap.epoch() <= stale_epoch_.load(std::memory_order_acquire);
  }

  /// Degraded-serving shard health (DESIGN.md §13). The RecoverySupervisor
  /// marks a shard down at eviction and up again at rejoin/resync; queries
  /// touching a down shard still serve the last published data but carry an
  /// explicit shard_down flag. Atomic bitmap, so the supervisor (simulation
  /// thread) and query threads need no lock; shards >= kMaxHealthShards are
  /// always reported up.
  void set_shard_health(std::uint32_t shard, bool up);
  [[nodiscard]] bool shard_available(std::uint32_t shard) const;
  static constexpr std::uint32_t kMaxHealthShards = 256;

  [[nodiscard]] std::uint64_t latest_epoch() const {
    return latest_epoch_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::uint64_t stale_watermark() const {
    return stale_epoch_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::size_t top_k_capacity() const noexcept { return capacity_; }

  // Publisher-side tallies (read them after the simulation is done, or from
  // the simulation thread).
  [[nodiscard]] std::uint64_t published() const noexcept { return published_; }
  [[nodiscard]] std::uint64_t invalidations() const noexcept {
    return invalidations_;
  }
  /// Publishes that recycled a retired buffer instead of allocating — the
  /// steady state once no reader holds a straggler reference.
  [[nodiscard]] std::uint64_t buffer_reuses() const noexcept {
    return buffer_reuses_;
  }

 private:
  /// Pick the buffer to rebuild for the next epoch: the retired slot if no
  /// reader still holds it, a fresh allocation otherwise.
  [[nodiscard]] RankSnapshot& next_buffer();
  /// Swap the just-built buffer in as current and advance the epoch.
  void commit();

  std::size_t capacity_;

  mutable util::Mutex mu_;
  std::shared_ptr<const RankSnapshot> current_ P2P_GUARDED_BY(mu_);

  // Double buffer. Only the publisher touches these; a retired buffer is
  // rebuilt in place iff every reader handle from its last publish has been
  // released. The proof is a release/acquire handshake, NOT use_count():
  // each commit hands readers a shared_ptr with its own control block whose
  // deleter release-stores that publish's epoch into the slot's marker, and
  // next_buffer() acquire-loads the marker — shared_ptr::use_count() is a
  // relaxed load and would leave the reader's final access unordered
  // against the rebuild (TSan catches exactly that).
  std::shared_ptr<RankSnapshot> buffers_[2] P2P_EXTERNALLY_SYNCHRONIZED;
  std::uint64_t slot_epoch_[2] P2P_EXTERNALLY_SYNCHRONIZED = {0, 0};
  /// Highest publish epoch whose readers are all done with the slot.
  /// shared_ptr-owned so a straggler handle may outlive the store itself.
  std::shared_ptr<std::atomic<std::uint64_t>> slot_released_[2];
  int last_slot_ P2P_EXTERNALLY_SYNCHRONIZED = 1;

  std::atomic<std::uint64_t> latest_epoch_{0};
  std::atomic<std::uint64_t> stale_epoch_{0};
  /// One bit per shard, set = down (see set_shard_health).
  std::array<std::atomic<std::uint64_t>, kMaxHealthShards / 64> shard_down_bits_{};

  std::uint64_t next_epoch_ P2P_EXTERNALLY_SYNCHRONIZED = 1;
  std::uint64_t published_ P2P_EXTERNALLY_SYNCHRONIZED = 0;
  std::uint64_t invalidations_ P2P_EXTERNALLY_SYNCHRONIZED = 0;
  std::uint64_t buffer_reuses_ P2P_EXTERNALLY_SYNCHRONIZED = 0;
};

/// Point-rank query result.
struct PointResult {
  bool served = false;  ///< false only before the first publish
  bool stale = false;   ///< snapshot predates the last invalidate()
  /// Snapshot older than the staleness bound at query time (degraded read —
  /// served anyway, explicitly flagged; see RankServer::set_staleness_bound).
  bool beyond_bound = false;
  /// The page's owning shard is marked unavailable (evicted ranker).
  bool shard_down = false;
  double rank = 0.0;
  std::uint64_t epoch = 0;
  double publish_time = 0.0;           ///< virtual time of the snapshot
  std::uint32_t shard = UINT32_MAX;    ///< owning shard of the queried page
};

/// Top-K query result.
struct TopKResult {
  bool served = false;
  bool stale = false;
  bool beyond_bound = false;  ///< past the staleness bound (degraded read)
  /// Global top-K: some contributing shard is down; shard query: that shard.
  bool shard_down = false;
  std::uint64_t epoch = 0;
  double publish_time = 0.0;
  std::vector<TopKEntry> entries;
};

/// Thread-safe query façade: acquires a snapshot per query, runs the
/// torn-epoch tripwire, classifies stale/unavailable, and tallies
/// everything in relaxed atomics (counts, not synchronization — totals
/// are read after the load is done).
class RankServer {
 public:
  /// Pass as `now` when the caller has no clock: staleness-bound checking is
  /// skipped (NaN compares false against everything).
  static constexpr double kNoQueryTime =
      std::numeric_limits<double>::quiet_NaN();

  explicit RankServer(const SnapshotStore& store) : store_(store) {}

  /// Bounded-staleness contract (DESIGN.md §13): with a finite bound set, a
  /// query that passes its own virtual time `now` and finds the snapshot
  /// older than `bound` is still answered — availability over freshness —
  /// but flagged beyond_bound and tallied as a degraded read. The default
  /// bound (infinity) and the default `now` (NaN) both disable the check.
  void set_staleness_bound(double bound) {
    staleness_bound_.store(bound, std::memory_order_relaxed);
  }
  [[nodiscard]] double staleness_bound() const noexcept {
    return staleness_bound_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] PointResult rank(std::uint32_t page,
                                 double now = kNoQueryTime) const;
  [[nodiscard]] TopKResult top_k(std::size_t k,
                                 double now = kNoQueryTime) const;
  [[nodiscard]] TopKResult shard_top_k(std::uint32_t shard, std::size_t k,
                                       double now = kNoQueryTime) const;

  [[nodiscard]] std::uint64_t queries() const noexcept {
    return queries_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t point_queries() const noexcept {
    return point_queries_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t topk_queries() const noexcept {
    return topk_queries_.load(std::memory_order_relaxed);
  }
  /// Queries that observed a mixed-epoch snapshot. The serving contract
  /// says this is ZERO, always; the bench and chaos harness fail the run
  /// on any other value.
  [[nodiscard]] std::uint64_t torn_reads() const noexcept {
    return torn_reads_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t stale_reads() const noexcept {
    return stale_reads_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t unavailable() const noexcept {
    return unavailable_.load(std::memory_order_relaxed);
  }
  /// Queries answered past the staleness bound and flagged beyond_bound.
  [[nodiscard]] std::uint64_t degraded_reads() const noexcept {
    return degraded_reads_.load(std::memory_order_relaxed);
  }
  /// Queries that touched a shard marked unavailable.
  [[nodiscard]] std::uint64_t shard_down_reads() const noexcept {
    return shard_down_reads_.load(std::memory_order_relaxed);
  }

 private:
  /// Shared per-query bookkeeping; returns null when unavailable.
  std::shared_ptr<const RankSnapshot> begin_query(bool topk, double now,
                                                  bool& stale,
                                                  bool& beyond_bound) const;
  void note_shard_down() const {
    shard_down_reads_.fetch_add(1, std::memory_order_relaxed);
  }

  const SnapshotStore& store_;
  mutable std::atomic<double> staleness_bound_{
      std::numeric_limits<double>::infinity()};
  mutable std::atomic<std::uint64_t> queries_{0};
  mutable std::atomic<std::uint64_t> point_queries_{0};
  mutable std::atomic<std::uint64_t> topk_queries_{0};
  mutable std::atomic<std::uint64_t> torn_reads_{0};
  mutable std::atomic<std::uint64_t> stale_reads_{0};
  mutable std::atomic<std::uint64_t> unavailable_{0};
  mutable std::atomic<std::uint64_t> degraded_reads_{0};
  mutable std::atomic<std::uint64_t> shard_down_reads_{0};
};

/// Set (not add) the serve.* counters in `m` from the store's and server's
/// tallies — call once after the load is done, mirroring the registry's
/// "export after join" discipline (metrics.hpp).
void export_serve_metrics(const SnapshotStore& store, const RankServer& server,
                          obs::MetricsRegistry& m);

}  // namespace p2prank::serve
