// Deterministic closed-loop load generator for the rank serving layer
// (DESIGN.md §12). Simulated clients live in virtual time on their own
// sim::EventQueue: each client thinks (exponential), issues a point-rank or
// top-K query against a SnapshotStore through a RankServer, waits for one
// of `servers` service slots (FIFO), is serviced (exponential), and loops.
// That makes throughput self-limiting — the closed-loop property — and the
// whole run a pure function of (options, store contents at each acquire).
//
// Determinism: one seeded util::Rng drives everything, consumed in event
// order, which the queue's FIFO tie-break fixes; same seed ⇒ byte-identical
// query stream (stream_log) and identical latency histograms. Queries hit
// the real store (the snapshots the engine published), so interleaving the
// generator with a sweeping engine exercises the genuine reader path.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/snapshot.hpp"
#include "sim/event_queue.hpp"
#include "util/histogram.hpp"
#include "util/rng.hpp"

namespace p2prank::obs {
class MetricsRegistry;
class Tracer;
}  // namespace p2prank::obs

namespace p2prank::serve {

/// Zipf(s) sampler over keys [0, n): P(i) ∝ (i+1)^-s, drawn by binary
/// search over the precomputed CDF. Deterministic given the rng stream.
class ZipfSampler {
 public:
  /// Requires n > 0 and exponent >= 0 (0 = uniform).
  ZipfSampler(std::size_t n, double exponent);

  [[nodiscard]] std::size_t sample(util::Rng& rng) const;

  [[nodiscard]] std::size_t n() const noexcept { return cdf_.size(); }
  /// Exact P(key == i) — the reference the frequency tests compare against.
  [[nodiscard]] double probability(std::size_t i) const;

 private:
  std::vector<double> cdf_;  // inclusive prefix sums of the weights
};

struct LoadGenOptions {
  std::uint32_t clients = 64;
  /// Service slots: at most this many queries in service at once; the rest
  /// wait FIFO (the closed-loop queue the latency tail comes from).
  std::uint32_t servers = 4;
  /// Mean think time between a client's completion and its next issue.
  double think_mean = 1.0;
  /// Mean service time of a point-rank query.
  double service_point = 0.002;
  /// Mean service time of a top-K query: base + per_entry * k.
  double service_topk_base = 0.004;
  double service_topk_per_entry = 0.0002;
  /// Probability a query is top-K (rest are point-rank).
  double topk_fraction = 0.2;
  /// K of every top-K query.
  std::size_t top_k = 10;
  /// Zipf exponent of the point-query key distribution.
  double zipf_exponent = 1.1;
  std::uint64_t seed = 1;
  /// Record the full per-query stream log (byte-comparable across runs);
  /// off by default — 10k-client benches do not want the allocation.
  bool record_stream = false;
};

/// End-of-run summary. qps / quantiles are over completed queries in
/// virtual time; checksum folds every served result (epoch + payload) so
/// two runs that byte-agree here read identical snapshots.
struct LoadGenReport {
  std::uint64_t issued = 0;
  std::uint64_t completed = 0;
  std::uint64_t point_queries = 0;
  std::uint64_t topk_queries = 0;
  std::uint64_t torn_reads = 0;
  std::uint64_t stale_reads = 0;
  std::uint64_t unavailable = 0;
  std::uint64_t max_queue_depth = 0;
  double duration = 0.0;
  double qps = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
  double max_latency = 0.0;
  std::uint64_t checksum = 0;
};

/// Latency histogram registered under obs::names::kServeLatency: fixed
/// bounds so every run's histogram is comparable byte-for-byte.
inline constexpr double kServeLatencyLo = 0.0;
inline constexpr double kServeLatencyHi = 2.0;
inline constexpr std::size_t kServeLatencyBins = 200;

class LoadGenerator {
 public:
  /// `num_pages` bounds the key space (must match the graph the engine
  /// serves). `metrics` / `tracer` are optional observers; both must
  /// outlive the generator. Throws std::invalid_argument on bad options.
  LoadGenerator(const SnapshotStore& store, std::size_t num_pages,
                const LoadGenOptions& opts,
                obs::MetricsRegistry* metrics = nullptr,
                obs::Tracer* tracer = nullptr);

  /// Advance the client world to virtual time `t` (monotone across calls).
  /// Interleave with the engine's own advance to co-simulate load + sweeps.
  void run_until(double t);

  [[nodiscard]] const RankServer& server() const noexcept { return server_; }
  [[nodiscard]] double now() const noexcept { return queue_.now(); }

  /// Per-query log, one line per issue (only when record_stream): byte-
  /// identical across runs of the same seed against identical snapshots.
  [[nodiscard]] const std::string& stream_log() const noexcept {
    return stream_log_;
  }

  [[nodiscard]] LoadGenReport report() const;

 private:
  void schedule_think(std::uint32_t client);
  void issue(std::uint32_t client);
  void start_service(std::uint32_t client, double service);
  void complete(std::uint32_t client);

  const SnapshotStore& store_;
  RankServer server_;
  LoadGenOptions opts_;
  ZipfSampler zipf_;
  sim::EventQueue queue_;
  util::Rng rng_;
  obs::MetricsRegistry* metrics_;
  obs::Tracer* tracer_;

  struct Waiting {
    std::uint32_t client;
    double service;
  };
  std::uint32_t busy_ = 0;
  std::vector<Waiting> wait_queue_;  // FIFO via head index
  std::size_t wait_head_ = 0;
  std::uint64_t max_queue_depth_ = 0;

  std::vector<double> issue_time_;  // per client, of the in-flight query
  std::vector<double> latencies_;
  util::LinearHistogram latency_hist_;
  std::string stream_log_;

  std::uint64_t issued_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t checksum_ = 0;
};

}  // namespace p2prank::serve
