#include "serve/loadgen.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "obs/metric_names.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/stats.hpp"

namespace p2prank::serve {

// ---------------------------------------------------------------------------
// ZipfSampler

ZipfSampler::ZipfSampler(std::size_t n, double exponent) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: n must be > 0");
  if (!(exponent >= 0.0) || !std::isfinite(exponent)) {
    throw std::invalid_argument("ZipfSampler: exponent must be finite, >= 0");
  }
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    total += std::pow(static_cast<double>(i + 1), -exponent);
    cdf_[i] = total;
  }
}

std::size_t ZipfSampler::sample(util::Rng& rng) const {
  const double u = rng.uniform() * cdf_.back();
  const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;  // u == total edge
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfSampler::probability(std::size_t i) const {
  const double lo = i == 0 ? 0.0 : cdf_[i - 1];
  return (cdf_[i] - lo) / cdf_.back();
}

// ---------------------------------------------------------------------------
// LoadGenerator

namespace {

void validate(const LoadGenOptions& o, std::size_t num_pages) {
  const auto positive = [](double v) { return v > 0.0 && std::isfinite(v); };
  if (num_pages == 0) {
    throw std::invalid_argument("LoadGenerator: num_pages must be > 0");
  }
  if (o.clients == 0) {
    throw std::invalid_argument("LoadGenOptions.clients: must be > 0");
  }
  if (o.servers == 0) {
    throw std::invalid_argument("LoadGenOptions.servers: must be > 0");
  }
  if (!positive(o.think_mean)) {
    throw std::invalid_argument("LoadGenOptions.think_mean: must be > 0");
  }
  if (!positive(o.service_point) || !positive(o.service_topk_base)) {
    throw std::invalid_argument("LoadGenOptions.service_*: must be > 0");
  }
  if (!(o.service_topk_per_entry >= 0.0) ||
      !std::isfinite(o.service_topk_per_entry)) {
    throw std::invalid_argument(
        "LoadGenOptions.service_topk_per_entry: must be >= 0 and finite");
  }
  if (!(o.topk_fraction >= 0.0 && o.topk_fraction <= 1.0)) {
    throw std::invalid_argument("LoadGenOptions.topk_fraction: must be in [0,1]");
  }
}

/// Fold one 64-bit word into a running checksum (order-sensitive).
constexpr std::uint64_t fold(std::uint64_t sum, std::uint64_t word) noexcept {
  return util::mix64(sum ^ word);
}

std::uint64_t double_bits(double v) noexcept {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  __builtin_memcpy(&bits, &v, sizeof(bits));
  return bits;
}

}  // namespace

LoadGenerator::LoadGenerator(const SnapshotStore& store, std::size_t num_pages,
                             const LoadGenOptions& opts,
                             obs::MetricsRegistry* metrics,
                             obs::Tracer* tracer)
    : store_(store),
      server_(store),
      opts_(opts),
      zipf_((validate(opts, num_pages), num_pages), opts.zipf_exponent),
      rng_(opts.seed),
      metrics_(metrics),
      tracer_(tracer),
      issue_time_(opts.clients, 0.0),
      latency_hist_(kServeLatencyLo, kServeLatencyHi, kServeLatencyBins) {
  latencies_.reserve(1024);
  // Clients wake for the first time after one think period each; the rng
  // draws happen in client order here and in event order afterwards, both
  // deterministic.
  for (std::uint32_t c = 0; c < opts_.clients; ++c) schedule_think(c);
}

void LoadGenerator::schedule_think(std::uint32_t client) {
  const double think = rng_.exponential(opts_.think_mean);
  queue_.schedule_in(think, [this, client] { issue(client); });
}

void LoadGenerator::issue(std::uint32_t client) {
  issue_time_[client] = queue_.now();
  ++issued_;

  const bool topk = rng_.chance(opts_.topk_fraction);
  std::uint64_t key = 0;
  std::uint64_t epoch = 0;
  bool served = false;
  bool stale = false;
  double service_mean = 0.0;
  if (topk) {
    const TopKResult r = server_.top_k(opts_.top_k);
    served = r.served;
    stale = r.stale;
    epoch = r.epoch;
    key = opts_.top_k;
    checksum_ = fold(checksum_, 0x10u);
    checksum_ = fold(checksum_, epoch);
    for (const TopKEntry& e : r.entries) {
      checksum_ = fold(checksum_, e.page);
      checksum_ = fold(checksum_, double_bits(e.rank));
    }
    service_mean = opts_.service_topk_base +
                   opts_.service_topk_per_entry * static_cast<double>(opts_.top_k);
  } else {
    key = zipf_.sample(rng_);
    const PointResult r = server_.rank(static_cast<std::uint32_t>(key));
    served = r.served;
    stale = r.stale;
    epoch = r.epoch;
    checksum_ = fold(checksum_, 0x20u);
    checksum_ = fold(checksum_, epoch);
    checksum_ = fold(checksum_, double_bits(r.rank));
    service_mean = opts_.service_point;
  }
  checksum_ = fold(checksum_, key);

  if (opts_.record_stream) {
    char line[160];
    std::snprintf(line, sizeof line,
                  "t=%.17g client=%u kind=%s key=%llu epoch=%llu served=%d "
                  "stale=%d\n",
                  queue_.now(), client, topk ? "topk" : "point",
                  static_cast<unsigned long long>(key),
                  static_cast<unsigned long long>(epoch), served ? 1 : 0,
                  stale ? 1 : 0);
    stream_log_ += line;
  }

  const double service = rng_.exponential(service_mean);
  if (busy_ < opts_.servers) {
    start_service(client, service);
  } else {
    wait_queue_.push_back({client, service});
    const std::uint64_t depth =
        static_cast<std::uint64_t>(wait_queue_.size() - wait_head_);
    max_queue_depth_ = std::max(max_queue_depth_, depth);
  }
}

void LoadGenerator::start_service(std::uint32_t client, double service) {
  ++busy_;
  queue_.schedule_in(service, [this, client] { complete(client); });
}

void LoadGenerator::complete(std::uint32_t client) {
  const double latency = queue_.now() - issue_time_[client];
  latencies_.push_back(latency);
  latency_hist_.add(latency);
  ++completed_;
  if (metrics_ != nullptr) {
    metrics_
        ->linear_histogram(obs::names::kServeLatency, kServeLatencyLo,
                           kServeLatencyHi, kServeLatencyBins)
        .add(latency);
  }
  if (tracer_ != nullptr) {
    tracer_->complete(obs::names::kTraceServeQuery, issue_time_[client],
                      latency, client, {}, latency);
  }

  --busy_;
  if (wait_head_ < wait_queue_.size()) {
    const Waiting w = wait_queue_[wait_head_++];
    if (wait_head_ == wait_queue_.size()) {
      wait_queue_.clear();
      wait_head_ = 0;
    }
    start_service(w.client, w.service);
  }
  schedule_think(client);
}

void LoadGenerator::run_until(double t) { queue_.run_until(t); }

LoadGenReport LoadGenerator::report() const {
  LoadGenReport r;
  r.issued = issued_;
  r.completed = completed_;
  r.point_queries = server_.point_queries();
  r.topk_queries = server_.topk_queries();
  r.torn_reads = server_.torn_reads();
  r.stale_reads = server_.stale_reads();
  r.unavailable = server_.unavailable();
  r.max_queue_depth = max_queue_depth_;
  r.duration = queue_.now();
  r.qps = r.duration > 0.0 ? static_cast<double>(completed_) / r.duration : 0.0;
  r.p50 = util::quantile(latencies_, 0.50);
  r.p99 = util::quantile(latencies_, 0.99);
  r.max_latency =
      latencies_.empty() ? 0.0 : *std::max_element(latencies_.begin(),
                                                   latencies_.end());
  r.checksum = checksum_;
  return r;
}

}  // namespace p2prank::serve
