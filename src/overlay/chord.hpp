// Chord overlay simulator (Stoica et al., SIGCOMM 2001).
//
// Ids live on a mod-2^128 ring; the node responsible for a key is the key's
// *successor* (first node clockwise). Each node keeps its successor and a
// finger table: finger i points at successor(id + 2^i). Forwarding follows
// the protocol: deliver to the successor when the key is in (self,
// successor], otherwise jump to the closest finger preceding the key —
// halving the remaining ring distance, hence O(log N) hops.
//
// Included alongside Pastry because the page-ranking paper's mechanisms
// (lookup, indirect transmission) are overlay-agnostic; having two overlays
// lets the transmission benches show that.
#pragma once

#include <memory>

#include "overlay/overlay.hpp"

namespace p2prank::overlay {

struct ChordConfig {
  std::uint32_t num_nodes = 0;
  int successor_list = 4;  ///< successors kept besides fingers (fault margin)
  std::uint64_t seed = 1;
};

class ChordOverlay final : public Overlay {
 public:
  explicit ChordOverlay(const ChordConfig& cfg);
  ~ChordOverlay() override;

  ChordOverlay(ChordOverlay&&) noexcept;
  ChordOverlay& operator=(ChordOverlay&&) noexcept;

  [[nodiscard]] std::string_view name() const noexcept override { return "chord"; }
  [[nodiscard]] std::size_t num_nodes() const noexcept override;
  [[nodiscard]] NodeId id_of(NodeIndex node) const override;
  [[nodiscard]] NodeIndex responsible_node(const NodeId& key) const override;
  [[nodiscard]] std::vector<NodeIndex> route(NodeIndex from,
                                             const NodeId& key) const override;
  [[nodiscard]] std::span<const NodeIndex> neighbors(NodeIndex node) const override;
  [[nodiscard]] NodeIndex next_hop(NodeIndex from, const NodeId& key) const override;

  /// The node's immediate successor on the ring.
  [[nodiscard]] NodeIndex successor(NodeIndex node) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace p2prank::overlay
