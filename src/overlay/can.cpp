#include "overlay/can.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace p2prank::overlay {

namespace {

constexpr int kMaxDims = 8;
// Coordinates are dyadic (zone splits halve intervals), so 52 bits — the
// double mantissa — encode any reachable boundary exactly.
constexpr int kMaxCoordBits = 52;

struct Zone {
  std::array<double, kMaxDims> lo{};
  std::array<double, kMaxDims> hi{};
  int depth = 0;  // splits from the root zone; next split dim = depth % d

  [[nodiscard]] bool contains(std::span<const double> p, int d) const noexcept {
    for (int j = 0; j < d; ++j) {
      if (p[j] < lo[j] || p[j] >= hi[j]) return false;
    }
    return true;
  }
};

double torus_gap(double a, double b) noexcept {
  const double diff = std::fabs(a - b);
  return std::min(diff, 1.0 - diff);
}

/// Squared torus distance from point p to the box of zone z.
double zone_distance_sq(const Zone& z, std::span<const double> p, int d) noexcept {
  double acc = 0.0;
  for (int j = 0; j < d; ++j) {
    if (p[j] >= z.lo[j] && p[j] < z.hi[j]) continue;
    // hi is an exclusive bound, but as a *distance* target the closed edge
    // is the right approximation on the torus.
    const double gap = std::min(torus_gap(p[j], z.lo[j]), torus_gap(p[j], z.hi[j]));
    acc += gap * gap;
  }
  return acc;
}

/// True when intervals [alo,ahi) and [blo,bhi) abut on the torus.
bool abuts(double alo, double ahi, double blo, double bhi) noexcept {
  if (ahi == blo || bhi == alo) return true;
  // Wraparound: [x,1) abuts [0,y).
  if (ahi == 1.0 && blo == 0.0) return true;
  if (bhi == 1.0 && alo == 0.0) return true;
  return false;
}

/// True when intervals overlap with positive measure.
bool overlaps(double alo, double ahi, double blo, double bhi) noexcept {
  return std::max(alo, blo) < std::min(ahi, bhi);
}

}  // namespace

struct CanOverlay::Impl {
  CanConfig cfg;
  int coord_bits = 0;  // bits per coordinate inside a NodeId
  std::vector<Zone> zones;  // index == NodeIndex
  std::vector<std::uint32_t> neighbor_offsets;
  std::vector<NodeIndex> neighbor_data;

  [[nodiscard]] std::vector<double> point_of(const NodeId& id) const {
    std::vector<double> p(cfg.dimensions);
    for (int j = 0; j < cfg.dimensions; ++j) {
      std::uint64_t bits = 0;
      for (int b = 0; b < coord_bits; ++b) {
        const int pos = j * coord_bits + b;  // from the most significant bit
        const std::uint64_t word = pos < 64 ? id.hi : id.lo;
        const int shift = 63 - (pos % 64);
        bits = (bits << 1) | ((word >> shift) & 1);
      }
      p[j] = std::ldexp(static_cast<double>(bits), -coord_bits);
    }
    return p;
  }

  [[nodiscard]] NodeId id_from_point(std::span<const double> p) const {
    NodeId id{0, 0};
    for (int j = 0; j < cfg.dimensions; ++j) {
      double x = p[j];
      for (int b = 0; b < coord_bits; ++b) {
        x *= 2.0;
        const int bit = x >= 1.0 ? 1 : 0;
        x -= bit;
        const int pos = j * coord_bits + b;
        if (bit) {
          if (pos < 64) {
            id.hi |= 1ULL << (63 - pos);
          } else {
            id.lo |= 1ULL << (63 - (pos - 64));
          }
        }
      }
    }
    return id;
  }

  [[nodiscard]] NodeIndex owner_of(std::span<const double> p) const {
    for (NodeIndex n = 0; n < zones.size(); ++n) {
      if (zones[n].contains(p, cfg.dimensions)) return n;
    }
    // p coordinates live in [0,1), and the zones tile [0,1)^d.
    assert(false && "CAN zones must tile the space");
    return kInvalidNode;
  }
};

CanOverlay::CanOverlay(const CanConfig& cfg) : impl_(new Impl) {
  if (cfg.num_nodes == 0) throw std::invalid_argument("can: num_nodes == 0");
  if (cfg.dimensions < 1 || cfg.dimensions > kMaxDims) {
    throw std::invalid_argument("can: dimensions must be in [1, 8]");
  }
  Impl& im = *impl_;
  im.cfg = cfg;
  im.coord_bits = std::min(kMaxCoordBits, NodeId::kBits / cfg.dimensions);

  // --- Sequential joins: split the zone containing a random point ----------
  util::Rng rng(cfg.seed ^ 0xc2b2ae3d27d4eb4fULL);
  im.zones.reserve(cfg.num_nodes);
  Zone root;
  for (int j = 0; j < cfg.dimensions; ++j) {
    root.lo[j] = 0.0;
    root.hi[j] = 1.0;
  }
  im.zones.push_back(root);

  std::vector<double> p(cfg.dimensions);
  for (NodeIndex joiner = 1; joiner < cfg.num_nodes; ++joiner) {
    for (auto& x : p) x = rng.uniform();
    const NodeIndex owner = im.owner_of(p);
    Zone& old_zone = im.zones[owner];
    const int dim = old_zone.depth % cfg.dimensions;
    const double mid = 0.5 * (old_zone.lo[dim] + old_zone.hi[dim]);

    Zone new_zone = old_zone;
    ++old_zone.depth;
    new_zone.depth = old_zone.depth;
    if (p[dim] >= mid) {
      new_zone.lo[dim] = mid;  // joiner takes the upper half
      old_zone.hi[dim] = mid;
    } else {
      new_zone.hi[dim] = mid;  // joiner takes the lower half
      old_zone.lo[dim] = mid;
    }
    im.zones.push_back(new_zone);
  }

  // --- Neighbor sets: abut in one dimension, overlap in the others ----------
  const auto n = static_cast<std::uint32_t>(im.zones.size());
  std::vector<std::vector<NodeIndex>> per_node(n);
  for (NodeIndex a = 0; a < n; ++a) {
    for (NodeIndex b = a + 1; b < n; ++b) {
      const Zone& za = im.zones[a];
      const Zone& zb = im.zones[b];
      int abut_dim = -1;
      bool ok = true;
      for (int j = 0; j < cfg.dimensions && ok; ++j) {
        if (overlaps(za.lo[j], za.hi[j], zb.lo[j], zb.hi[j])) continue;
        if (abuts(za.lo[j], za.hi[j], zb.lo[j], zb.hi[j]) && abut_dim < 0) {
          abut_dim = j;
        } else {
          ok = false;
        }
      }
      // For n == 1..2 a pair can abut on both torus sides; dedupe is implicit
      // because we record the pair once.
      if (ok && (abut_dim >= 0 || cfg.dimensions == 1)) {
        per_node[a].push_back(b);
        per_node[b].push_back(a);
      }
    }
  }
  im.neighbor_offsets.assign(n + 1, 0);
  for (NodeIndex i = 0; i < n; ++i) {
    std::sort(per_node[i].begin(), per_node[i].end());
    im.neighbor_offsets[i + 1] =
        im.neighbor_offsets[i] + static_cast<std::uint32_t>(per_node[i].size());
  }
  im.neighbor_data.reserve(im.neighbor_offsets[n]);
  for (auto& v : per_node) {
    im.neighbor_data.insert(im.neighbor_data.end(), v.begin(), v.end());
  }
}

CanOverlay::~CanOverlay() = default;
CanOverlay::CanOverlay(CanOverlay&&) noexcept = default;
CanOverlay& CanOverlay::operator=(CanOverlay&&) noexcept = default;

std::size_t CanOverlay::num_nodes() const noexcept { return impl_->zones.size(); }

NodeId CanOverlay::id_of(NodeIndex node) const {
  const Impl& im = *impl_;
  const Zone& z = im.zones.at(node);
  std::vector<double> center(im.cfg.dimensions);
  for (int j = 0; j < im.cfg.dimensions; ++j) {
    center[j] = 0.5 * (z.lo[j] + z.hi[j]);
  }
  return im.id_from_point(center);
}

NodeIndex CanOverlay::responsible_node(const NodeId& key) const {
  return impl_->owner_of(impl_->point_of(key));
}

NodeIndex CanOverlay::next_hop(NodeIndex from, const NodeId& key) const {
  const Impl& im = *impl_;
  assert(from < im.zones.size());
  const auto p = im.point_of(key);
  if (im.zones[from].contains(p, im.cfg.dimensions)) return kInvalidNode;

  // Greedy: neighbor whose zone lies closest to the target point. The zone
  // the straight-line path enters next abuts ours and is strictly closer,
  // so the minimum always makes progress.
  const double own = zone_distance_sq(im.zones[from], p, im.cfg.dimensions);
  NodeIndex best = kInvalidNode;
  double best_dist = own;
  for (const NodeIndex cand : neighbors(from)) {
    const double d = zone_distance_sq(im.zones[cand], p, im.cfg.dimensions);
    if (d < best_dist || (best == kInvalidNode && d <= best_dist)) {
      best = cand;
      best_dist = d;
    }
  }
  assert(best != kInvalidNode && "greedy CAN forwarding must progress");
  return best;
}

std::vector<NodeIndex> CanOverlay::route(NodeIndex from, const NodeId& key) const {
  std::vector<NodeIndex> path;
  NodeIndex cur = from;
  while (true) {
    const NodeIndex next = next_hop(cur, key);
    if (next == kInvalidNode) break;
    path.push_back(next);
    cur = next;
    if (path.size() > impl_->zones.size()) {
      throw std::logic_error("can: routing loop detected");
    }
  }
  return path;
}

std::span<const NodeIndex> CanOverlay::neighbors(NodeIndex node) const {
  const Impl& im = *impl_;
  return {im.neighbor_data.data() + im.neighbor_offsets[node],
          im.neighbor_data.data() + im.neighbor_offsets[node + 1]};
}

std::vector<std::pair<double, double>> CanOverlay::zone_of(NodeIndex node) const {
  const Zone& z = impl_->zones.at(node);
  std::vector<std::pair<double, double>> bounds;
  for (int j = 0; j < impl_->cfg.dimensions; ++j) {
    bounds.emplace_back(z.lo[j], z.hi[j]);
  }
  return bounds;
}

}  // namespace p2prank::overlay
