// Abstract structured P2P overlay.
//
// The paper runs page rankers on top of "structured peer-to-peer overlay
// networks [6, 13, 14, 15]" — Pastry, CAN, Chord, Tapestry. What distributed
// ranking actually consumes from the overlay is small and captured by this
// interface:
//   * a key -> responsible-node mapping (which ranker owns a page group id),
//   * a hop-by-hop route between nodes (lookups cost h hops; indirect
//     transmission forwards data along exactly these paths),
//   * each node's neighbor set (indirect transmission exchanges packages
//     only with neighbors; g = |neighbors| sets the O(gN) message bound).
//
// Implementations are *simulators*: they hold the global membership and
// materialize each node's routing state exactly as the real protocol would
// after a stabilized join, then answer route() by running the real
// per-node forwarding rule using only that node's local state.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "overlay/node_id.hpp"

namespace p2prank::overlay {

/// Dense index of a node within the simulated overlay, 0..N-1.
using NodeIndex = std::uint32_t;

inline constexpr NodeIndex kInvalidNode = static_cast<NodeIndex>(-1);

class Overlay {
 public:
  virtual ~Overlay() = default;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  [[nodiscard]] virtual std::size_t num_nodes() const noexcept = 0;
  [[nodiscard]] virtual NodeId id_of(NodeIndex node) const = 0;

  /// The node responsible for a key (Pastry: numerically closest id;
  /// Chord: successor on the ring).
  [[nodiscard]] virtual NodeIndex responsible_node(const NodeId& key) const = 0;

  /// Forwarding hops from `from` to the node responsible for `key`,
  /// excluding `from`, including the destination. An empty result means
  /// `from` is itself responsible.
  [[nodiscard]] virtual std::vector<NodeIndex> route(NodeIndex from,
                                                     const NodeId& key) const = 0;

  /// The node's neighbor set: every node it can send one overlay hop to.
  [[nodiscard]] virtual std::span<const NodeIndex> neighbors(NodeIndex node) const = 0;

  /// Single forwarding step of the protocol: the next hop from `from`
  /// toward `key`, or kInvalidNode when `from` is responsible for `key`.
  [[nodiscard]] virtual NodeIndex next_hop(NodeIndex from, const NodeId& key) const = 0;
};

/// Mean hops and neighbor-count statistics, measured by routing `samples`
/// random keys from random sources.
struct OverlayProbe {
  double mean_hops = 0.0;
  double max_hops = 0.0;
  double mean_neighbors = 0.0;
};

[[nodiscard]] OverlayProbe probe_overlay(const Overlay& o, std::size_t samples,
                                         std::uint64_t seed);

}  // namespace p2prank::overlay
