// CAN overlay simulator (Ratnasamy et al., SIGCOMM 2001 — reference [13] of
// the paper).
//
// A Content-Addressable Network maps nodes onto zones of a d-dimensional
// torus [0,1)^d. A key hashes to a point; the node whose zone contains the
// point is responsible. Each node knows the owners of adjacent zones
// (overlap in d-1 dimensions, abut in one), and forwarding is greedy: hand
// the message to the neighbor whose zone lies closest to the target point.
// Expected route length is (d/4)·N^(1/d) — polynomial, not logarithmic,
// which makes CAN a useful contrast in the transmission benches: same
// indirect-transmission machinery, very different h and g.
//
// The simulator materializes the stabilized state after N sequential joins:
// each joining node splits the zone that contains a random point, taking
// the half that contains it (dimensions split in cyclic order, as in the
// CAN paper).
#pragma once

#include <memory>

#include "overlay/overlay.hpp"

namespace p2prank::overlay {

struct CanConfig {
  std::uint32_t num_nodes = 0;
  int dimensions = 2;  ///< the protocol's d (2..8 supported)
  std::uint64_t seed = 1;
};

class CanOverlay final : public Overlay {
 public:
  explicit CanOverlay(const CanConfig& cfg);
  ~CanOverlay() override;

  CanOverlay(CanOverlay&&) noexcept;
  CanOverlay& operator=(CanOverlay&&) noexcept;

  [[nodiscard]] std::string_view name() const noexcept override { return "can"; }
  [[nodiscard]] std::size_t num_nodes() const noexcept override;
  [[nodiscard]] NodeId id_of(NodeIndex node) const override;
  [[nodiscard]] NodeIndex responsible_node(const NodeId& key) const override;
  [[nodiscard]] std::vector<NodeIndex> route(NodeIndex from,
                                             const NodeId& key) const override;
  [[nodiscard]] std::span<const NodeIndex> neighbors(NodeIndex node) const override;
  [[nodiscard]] NodeIndex next_hop(NodeIndex from, const NodeId& key) const override;

  /// Zone bounds of a node, lo/hi per dimension (for tests/diagnostics).
  [[nodiscard]] std::vector<std::pair<double, double>> zone_of(NodeIndex node) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace p2prank::overlay
