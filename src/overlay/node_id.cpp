#include "overlay/node_id.hpp"

#include <array>
#include <cstdio>

#include "util/hash.hpp"
#include "util/rng.hpp"

namespace p2prank::overlay {

int NodeId::shared_prefix_digits(const NodeId& other, int bits_per_digit) const noexcept {
  const int total_digits = kBits / bits_per_digit;
  for (int i = 0; i < total_digits; ++i) {
    if (digit(i, bits_per_digit) != other.digit(i, bits_per_digit)) return i;
  }
  return total_digits;
}

std::string NodeId::to_hex() const {
  std::array<char, 33> buf{};
  std::snprintf(buf.data(), buf.size(), "%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return std::string(buf.data(), 32);
}

NodeId node_id_from_key(std::string_view key) noexcept {
  const std::uint64_t h = util::fnv1a(key);
  return {util::mix64(h), util::mix64(h ^ 0x9e3779b97f4a7c15ULL)};
}

NodeId node_id_from_u64(std::uint64_t value) noexcept {
  return {util::mix64(value), util::mix64(value ^ 0xda942042e4dd58b5ULL)};
}

namespace {

/// a - b as 128-bit two's complement (callers guarantee interpretation).
constexpr NodeId sub128(const NodeId& a, const NodeId& b) noexcept {
  NodeId r;
  r.lo = a.lo - b.lo;
  r.hi = a.hi - b.hi - (a.lo < b.lo ? 1 : 0);
  return r;
}

}  // namespace

NodeId linear_distance(const NodeId& a, const NodeId& b) noexcept {
  return a >= b ? sub128(a, b) : sub128(b, a);
}

NodeId ring_distance(const NodeId& a, const NodeId& b) noexcept {
  return sub128(b, a);  // mod 2^128 wraparound is free in two's complement
}

bool in_ring_range(const NodeId& x, const NodeId& from, const NodeId& to) noexcept {
  // x in (from, to] on the clockwise ring <=> dist(from, x) <= dist(from, to)
  // and x != from.
  if (x == from) return false;
  return ring_distance(from, x) <= ring_distance(from, to);
}

}  // namespace p2prank::overlay
