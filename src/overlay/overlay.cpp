#include "overlay/overlay.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace p2prank::overlay {

OverlayProbe probe_overlay(const Overlay& o, std::size_t samples, std::uint64_t seed) {
  OverlayProbe probe;
  const std::size_t n = o.num_nodes();
  if (n == 0) return probe;

  util::Rng rng(seed);
  double hop_sum = 0.0;
  for (std::size_t s = 0; s < samples; ++s) {
    const auto from = static_cast<NodeIndex>(rng.below(n));
    const NodeId key = node_id_from_u64(rng.next());
    const auto path = o.route(from, key);
    const auto hops = static_cast<double>(path.size());
    hop_sum += hops;
    probe.max_hops = std::max(probe.max_hops, hops);
  }
  probe.mean_hops = samples ? hop_sum / static_cast<double>(samples) : 0.0;

  double neighbor_sum = 0.0;
  for (NodeIndex node = 0; node < n; ++node) {
    neighbor_sum += static_cast<double>(o.neighbors(node).size());
  }
  probe.mean_neighbors = neighbor_sum / static_cast<double>(n);
  return probe;
}

}  // namespace p2prank::overlay
