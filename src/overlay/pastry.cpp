#include "overlay/pastry.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "util/rng.hpp"

namespace p2prank::overlay {

struct PastryOverlay::Impl {
  PastryConfig cfg;
  int cols = 0;       // 2^b
  int rows = 0;       // materialized routing-table rows
  std::vector<NodeId> ids;            // sorted ascending; index == NodeIndex
  std::vector<NodeIndex> table;       // [node][row][col], kInvalidNode if empty
  std::vector<NodeIndex> leaf;        // [node][leaf_count] flattened
  int leaf_count = 0;                 // leaves per node (uniform)
  std::vector<std::uint32_t> neighbor_offsets;
  std::vector<NodeIndex> neighbor_data;

  [[nodiscard]] NodeIndex table_at(NodeIndex n, int r, int c) const noexcept {
    return table[(static_cast<std::size_t>(n) * rows + r) * cols + c];
  }

  /// Range [lo, hi) of sorted nodes whose first `digits` base-2^b digits
  /// match `id`'s, with digit `digits` equal to `col` (col < 0: any value).
  [[nodiscard]] std::pair<std::uint32_t, std::uint32_t> prefix_range(
      const NodeId& id, int digits, int col) const noexcept {
    const int b = cfg.bits_per_digit;
    const int fixed_bits = digits * b + (col >= 0 ? b : 0);
    NodeId lo = id;
    NodeId hi = id;
    if (col >= 0) {
      // Overwrite digit `digits` with col.
      const int shift = NodeId::kBits - (digits + 1) * b;
      const std::uint64_t mask = (1ULL << b) - 1;
      if (shift >= 64) {
        lo.hi = (lo.hi & ~(mask << (shift - 64))) |
                (static_cast<std::uint64_t>(col) << (shift - 64));
      } else {
        lo.lo = (lo.lo & ~(mask << shift)) | (static_cast<std::uint64_t>(col) << shift);
      }
      hi = lo;
    }
    // Zero / one-fill everything below the fixed prefix.
    if (fixed_bits == 0) {
      lo = {0, 0};
      hi = {~0ULL, ~0ULL};
    } else if (fixed_bits < 64) {
      const std::uint64_t keep = ~0ULL << (64 - fixed_bits);
      lo.hi &= keep;
      lo.lo = 0;
      hi.hi = (hi.hi & keep) | ~keep;
      hi.lo = ~0ULL;
    } else if (fixed_bits == 64) {
      lo.lo = 0;
      hi.lo = ~0ULL;
    } else if (fixed_bits < 128) {
      const std::uint64_t keep = ~0ULL << (128 - fixed_bits);
      lo.lo &= keep;
      hi.lo = (hi.lo & keep) | ~keep;
    }
    const auto begin =
        std::lower_bound(ids.begin(), ids.end(), lo) - ids.begin();
    const auto end = std::upper_bound(ids.begin(), ids.end(), hi) - ids.begin();
    return {static_cast<std::uint32_t>(begin), static_cast<std::uint32_t>(end)};
  }
};

PastryOverlay::PastryOverlay(const PastryConfig& cfg) : impl_(new Impl) {
  if (cfg.num_nodes == 0) throw std::invalid_argument("pastry: num_nodes == 0");
  if (cfg.bits_per_digit != 1 && cfg.bits_per_digit != 2 && cfg.bits_per_digit != 4 &&
      cfg.bits_per_digit != 8) {
    throw std::invalid_argument("pastry: bits_per_digit must be 1, 2, 4 or 8");
  }
  if (cfg.leaf_set_size < 2 || cfg.leaf_set_size % 2 != 0) {
    throw std::invalid_argument("pastry: leaf_set_size must be even and >= 2");
  }
  Impl& im = *impl_;
  im.cfg = cfg;
  im.cols = 1 << cfg.bits_per_digit;

  // --- Node ids: distinct, uniform, sorted --------------------------------
  const std::uint32_t n = cfg.num_nodes;
  im.ids.reserve(n);
  std::uint64_t salt = 0;
  do {
    im.ids.clear();
    for (std::uint32_t i = 0; i < n; ++i) {
      im.ids.push_back(node_id_from_u64(util::mix64(cfg.seed + salt) ^ i * 0x9e3779b97f4a7c15ULL));
    }
    std::sort(im.ids.begin(), im.ids.end());
    ++salt;  // 128-bit collisions are absurdly unlikely, but stay total
  } while (std::adjacent_find(im.ids.begin(), im.ids.end()) != im.ids.end());

  // --- Row count: one past the longest prefix shared by any two nodes -----
  int max_prefix = 0;
  for (std::uint32_t i = 0; i + 1 < n; ++i) {
    max_prefix = std::max(
        max_prefix, im.ids[i].shared_prefix_digits(im.ids[i + 1], cfg.bits_per_digit));
  }
  im.rows = std::min(NodeId::kBits / cfg.bits_per_digit, max_prefix + 1);

  // --- Routing tables -------------------------------------------------------
  im.table.assign(static_cast<std::size_t>(n) * im.rows * im.cols, kInvalidNode);
  for (NodeIndex node = 0; node < n; ++node) {
    const NodeId& my = im.ids[node];
    for (int r = 0; r < im.rows; ++r) {
      const unsigned my_digit = my.digit(r, cfg.bits_per_digit);
      for (int c = 0; c < im.cols; ++c) {
        if (static_cast<unsigned>(c) == my_digit) continue;
        const auto [lo, hi] = im.prefix_range(my, r, c);
        if (lo >= hi) continue;
        // Candidates share r digits with me and differ at digit r, so the
        // whole range lies strictly below or above me in sorted order; the
        // numerically closest candidate is the one nearest my position.
        const NodeIndex pick = hi <= node ? hi - 1 : lo;
        im.table[(static_cast<std::size_t>(node) * im.rows + r) * im.cols + c] = pick;
      }
      // Once the prefix range is just this node, deeper rows are empty.
      const auto [plo, phi] = im.prefix_range(my, r + 1, -1);
      if (phi - plo <= 1) break;
    }
  }

  // --- Leaf sets -----------------------------------------------------------
  im.leaf_count = static_cast<int>(
      std::min<std::uint32_t>(cfg.leaf_set_size, n > 0 ? n - 1 : 0));
  im.leaf.assign(static_cast<std::size_t>(n) * im.leaf_count, kInvalidNode);
  const int half = im.leaf_count == static_cast<int>(n) - 1
                       ? im.leaf_count  // everyone else fits
                       : cfg.leaf_set_size / 2;
  for (NodeIndex node = 0; node < n; ++node) {
    int w = 0;
    if (im.leaf_count == static_cast<int>(n) - 1) {
      for (NodeIndex other = 0; other < n; ++other) {
        if (other != node) im.leaf[static_cast<std::size_t>(node) * im.leaf_count + w++] = other;
      }
    } else {
      for (int d = 1; d <= half; ++d) {
        im.leaf[static_cast<std::size_t>(node) * im.leaf_count + w++] =
            static_cast<NodeIndex>((node + d) % n);
        im.leaf[static_cast<std::size_t>(node) * im.leaf_count + w++] =
            static_cast<NodeIndex>((node + n - d) % n);
      }
    }
    assert(w == im.leaf_count);
  }

  // --- Neighbor sets (leaf ∪ routing table, deduped) ------------------------
  im.neighbor_offsets.assign(n + 1, 0);
  std::vector<NodeIndex> scratch;
  std::vector<std::vector<NodeIndex>> per_node(n);
  for (NodeIndex node = 0; node < n; ++node) {
    scratch.clear();
    for (int l = 0; l < im.leaf_count; ++l) {
      scratch.push_back(im.leaf[static_cast<std::size_t>(node) * im.leaf_count + l]);
    }
    for (int r = 0; r < im.rows; ++r) {
      for (int c = 0; c < im.cols; ++c) {
        const NodeIndex t = im.table_at(node, r, c);
        if (t != kInvalidNode) scratch.push_back(t);
      }
    }
    std::sort(scratch.begin(), scratch.end());
    scratch.erase(std::unique(scratch.begin(), scratch.end()), scratch.end());
    per_node[node] = scratch;
    im.neighbor_offsets[node + 1] =
        im.neighbor_offsets[node] + static_cast<std::uint32_t>(scratch.size());
  }
  im.neighbor_data.reserve(im.neighbor_offsets[n]);
  for (auto& v : per_node) {
    im.neighbor_data.insert(im.neighbor_data.end(), v.begin(), v.end());
  }
}

PastryOverlay::~PastryOverlay() = default;
PastryOverlay::PastryOverlay(PastryOverlay&&) noexcept = default;
PastryOverlay& PastryOverlay::operator=(PastryOverlay&&) noexcept = default;

std::size_t PastryOverlay::num_nodes() const noexcept { return impl_->ids.size(); }

NodeId PastryOverlay::id_of(NodeIndex node) const { return impl_->ids.at(node); }

NodeIndex PastryOverlay::responsible_node(const NodeId& key) const {
  const auto& ids = impl_->ids;
  const auto it = std::lower_bound(ids.begin(), ids.end(), key);
  if (it == ids.begin()) return 0;
  if (it == ids.end()) return static_cast<NodeIndex>(ids.size() - 1);
  const auto above = static_cast<NodeIndex>(it - ids.begin());
  const NodeIndex below = above - 1;
  // Numerically closest; ties go to the lower id.
  return linear_distance(key, ids[below]) <= linear_distance(ids[above], key) ? below
                                                                              : above;
}

NodeIndex PastryOverlay::next_hop(NodeIndex from, const NodeId& key) const {
  const Impl& im = *impl_;
  const auto n = static_cast<std::uint32_t>(im.ids.size());
  assert(from < n);
  const NodeIndex dest = responsible_node(key);
  if (dest == from) return kInvalidNode;

  // Leaf-set delivery: the destination is within our leaf window (circular
  // index distance), so a correct leaf set contains it — one hop.
  const std::uint32_t fwd = dest >= from ? dest - from : dest + n - from;
  const std::uint32_t bwd = n - fwd;
  const auto half = static_cast<std::uint32_t>(
      im.leaf_count == static_cast<int>(n) - 1 ? n : im.cfg.leaf_set_size / 2);
  if (fwd <= half || bwd <= half) return dest;

  // Prefix routing: extend the shared prefix by one digit.
  const NodeId& my = im.ids[from];
  const int r = my.shared_prefix_digits(key, im.cfg.bits_per_digit);
  if (r < im.rows) {
    const auto c = static_cast<int>(key.digit(r, im.cfg.bits_per_digit));
    const NodeIndex entry = im.table_at(from, r, c);
    if (entry != kInvalidNode) return entry;
  }

  // Rare case: no table entry. Forward to any known node strictly closer to
  // the key whose prefix is no shorter than ours.
  NodeIndex best = kInvalidNode;
  NodeId best_dist = linear_distance(my, key);
  for (const NodeIndex cand : neighbors(from)) {
    if (im.ids[cand].shared_prefix_digits(key, im.cfg.bits_per_digit) < r) continue;
    const NodeId d = linear_distance(im.ids[cand], key);
    if (d < best_dist) {
      best_dist = d;
      best = cand;
    }
  }
  if (best != kInvalidNode) return best;
  // Complete state should never reach here, but stay total: deliver.
  return dest;
}

std::vector<NodeIndex> PastryOverlay::route(NodeIndex from, const NodeId& key) const {
  std::vector<NodeIndex> path;
  NodeIndex cur = from;
  while (true) {
    const NodeIndex next = next_hop(cur, key);
    if (next == kInvalidNode) break;
    path.push_back(next);
    cur = next;
    if (path.size() > impl_->ids.size()) {
      throw std::logic_error("pastry: routing loop detected");
    }
  }
  return path;
}

std::span<const NodeIndex> PastryOverlay::neighbors(NodeIndex node) const {
  const Impl& im = *impl_;
  return {im.neighbor_data.data() + im.neighbor_offsets[node],
          im.neighbor_data.data() + im.neighbor_offsets[node + 1]};
}

NodeIndex PastryOverlay::table_entry(NodeIndex node, int row, int col) const {
  const Impl& im = *impl_;
  if (row < 0 || row >= im.rows || col < 0 || col >= im.cols) {
    throw std::out_of_range("pastry: table_entry index");
  }
  return im.table_at(node, row, col);
}

std::span<const NodeIndex> PastryOverlay::leaf_set(NodeIndex node) const {
  const Impl& im = *impl_;
  return {im.leaf.data() + static_cast<std::size_t>(node) * im.leaf_count,
          im.leaf.data() + static_cast<std::size_t>(node + 1) * im.leaf_count};
}

int PastryOverlay::num_rows() const noexcept { return impl_->rows; }

}  // namespace p2prank::overlay
