// 128-bit identifiers for the structured-overlay id space.
//
// Pastry interprets an id as a string of base-2^b digits (most significant
// first) and routes by prefix matching; Chord interprets it as a point on a
// mod-2^128 ring. Both views live here.
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>

namespace p2prank::overlay {

struct NodeId {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend constexpr auto operator<=>(const NodeId&, const NodeId&) = default;

  static constexpr int kBits = 128;

  /// Digit `index` (0 = most significant) when the id is read in base 2^b.
  [[nodiscard]] constexpr unsigned digit(int index, int bits_per_digit) const noexcept {
    const int shift = kBits - (index + 1) * bits_per_digit;
    const std::uint64_t word = shift >= 64 ? hi : lo;
    const int word_shift = shift >= 64 ? shift - 64 : shift;
    const std::uint64_t mask = (1ULL << bits_per_digit) - 1;
    // A digit never straddles the hi/lo boundary because bits_per_digit
    // divides 64 for every supported base (1, 2, 4, 8).
    return static_cast<unsigned>((word >> word_shift) & mask);
  }

  /// Number of leading base-2^b digits shared with `other`.
  [[nodiscard]] int shared_prefix_digits(const NodeId& other,
                                         int bits_per_digit) const noexcept;

  [[nodiscard]] std::string to_hex() const;
};

/// Derive a well-distributed id from arbitrary bytes (e.g. "node17", an IP).
[[nodiscard]] NodeId node_id_from_key(std::string_view key) noexcept;

/// Derive an id from a 64-bit seed/index (used to place simulated nodes).
[[nodiscard]] NodeId node_id_from_u64(std::uint64_t value) noexcept;

/// |a - b| in the *linear* id space (no wraparound) — Pastry's notion of
/// numerical closeness. Returned as a NodeId-sized magnitude.
[[nodiscard]] NodeId linear_distance(const NodeId& a, const NodeId& b) noexcept;

/// (b - a) mod 2^128 — Chord's clockwise ring distance from a to b.
[[nodiscard]] NodeId ring_distance(const NodeId& a, const NodeId& b) noexcept;

/// True when `x` lies in the half-open clockwise ring interval (from, to].
[[nodiscard]] bool in_ring_range(const NodeId& x, const NodeId& from,
                                 const NodeId& to) noexcept;

}  // namespace p2prank::overlay
