#include "overlay/chord.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "util/rng.hpp"

namespace p2prank::overlay {

struct ChordOverlay::Impl {
  ChordConfig cfg;
  std::vector<NodeId> ids;  // sorted ascending; index == NodeIndex
  // Per node: unique finger targets (node indices), ascending by clockwise
  // ring distance from the node. Successor is fingers.front().
  std::vector<std::uint32_t> finger_offsets;
  std::vector<NodeIndex> finger_data;

  [[nodiscard]] std::span<const NodeIndex> fingers(NodeIndex node) const noexcept {
    return {finger_data.data() + finger_offsets[node],
            finger_data.data() + finger_offsets[node + 1]};
  }
};

namespace {

/// key + 2^bit on the ring.
NodeId ring_add_pow2(const NodeId& id, int bit) noexcept {
  NodeId r = id;
  if (bit < 64) {
    const std::uint64_t add = 1ULL << bit;
    r.lo += add;
    if (r.lo < id.lo) ++r.hi;  // carry
  } else {
    r.hi += 1ULL << (bit - 64);
  }
  return r;
}

}  // namespace

ChordOverlay::ChordOverlay(const ChordConfig& cfg) : impl_(new Impl) {
  if (cfg.num_nodes == 0) throw std::invalid_argument("chord: num_nodes == 0");
  if (cfg.successor_list < 1) {
    throw std::invalid_argument("chord: successor_list must be >= 1");
  }
  Impl& im = *impl_;
  im.cfg = cfg;

  const std::uint32_t n = cfg.num_nodes;
  std::uint64_t salt = 0;
  do {
    im.ids.clear();
    for (std::uint32_t i = 0; i < n; ++i) {
      im.ids.push_back(
          node_id_from_u64(util::mix64(cfg.seed + salt) ^ i * 0xbf58476d1ce4e5b9ULL));
    }
    std::sort(im.ids.begin(), im.ids.end());
    ++salt;
  } while (std::adjacent_find(im.ids.begin(), im.ids.end()) != im.ids.end());

  // Fingers: successor(id + 2^i) for every i, plus a short successor list.
  im.finger_offsets.assign(n + 1, 0);
  std::vector<std::vector<NodeIndex>> per_node(n);
  std::vector<NodeIndex> raw;
  for (NodeIndex node = 0; node < n; ++node) {
    raw.clear();
    for (int s = 1; s <= cfg.successor_list; ++s) {
      raw.push_back(static_cast<NodeIndex>((node + s) % n));
    }
    for (int bit = 0; bit < NodeId::kBits; ++bit) {
      raw.push_back(responsible_node(ring_add_pow2(im.ids[node], bit)));
    }
    // Dedupe; drop self (successor of tiny offsets can be the node itself
    // only when n == 1, where fingers are meaningless anyway).
    std::sort(raw.begin(), raw.end());
    raw.erase(std::unique(raw.begin(), raw.end()), raw.end());
    raw.erase(std::remove(raw.begin(), raw.end(), node), raw.end());
    // Order by clockwise distance so routing can scan farthest-first.
    std::sort(raw.begin(), raw.end(), [&](NodeIndex a, NodeIndex b) {
      return ring_distance(im.ids[node], im.ids[a]) <
             ring_distance(im.ids[node], im.ids[b]);
    });
    per_node[node] = raw;
    im.finger_offsets[node + 1] =
        im.finger_offsets[node] + static_cast<std::uint32_t>(raw.size());
  }
  im.finger_data.reserve(im.finger_offsets[n]);
  for (auto& v : per_node) {
    im.finger_data.insert(im.finger_data.end(), v.begin(), v.end());
  }
}

ChordOverlay::~ChordOverlay() = default;
ChordOverlay::ChordOverlay(ChordOverlay&&) noexcept = default;
ChordOverlay& ChordOverlay::operator=(ChordOverlay&&) noexcept = default;

std::size_t ChordOverlay::num_nodes() const noexcept { return impl_->ids.size(); }

NodeId ChordOverlay::id_of(NodeIndex node) const { return impl_->ids.at(node); }

NodeIndex ChordOverlay::responsible_node(const NodeId& key) const {
  // Successor: first node with id >= key, wrapping to node 0.
  const auto& ids = impl_->ids;
  const auto it = std::lower_bound(ids.begin(), ids.end(), key);
  if (it == ids.end()) return 0;
  return static_cast<NodeIndex>(it - ids.begin());
}

NodeIndex ChordOverlay::successor(NodeIndex node) const {
  return static_cast<NodeIndex>((node + 1) % impl_->ids.size());
}

NodeIndex ChordOverlay::next_hop(NodeIndex from, const NodeId& key) const {
  const Impl& im = *impl_;
  assert(from < im.ids.size());
  const NodeIndex dest = responsible_node(key);
  if (dest == from) return kInvalidNode;
  if (im.ids.size() == 1) return kInvalidNode;

  const NodeId& my = im.ids[from];
  const NodeIndex succ = successor(from);
  // Key in (self, successor] -> the successor is responsible: deliver.
  if (in_ring_range(key, my, im.ids[succ])) return succ;

  // Closest preceding finger: the farthest finger that still lies strictly
  // before the key clockwise. Fingers are sorted by clockwise distance, so
  // scan from the far end.
  const auto fingers = im.fingers(from);
  const NodeId key_dist = ring_distance(my, key);
  for (auto it = fingers.rbegin(); it != fingers.rend(); ++it) {
    const NodeId d = ring_distance(my, im.ids[*it]);
    if (NodeId{0, 0} < d && d < key_dist) return *it;
  }
  // All fingers at or past the key (cannot happen with a complete finger
  // table unless n == 1): fall back to the successor, which always makes
  // clockwise progress.
  return succ;
}

std::vector<NodeIndex> ChordOverlay::route(NodeIndex from, const NodeId& key) const {
  std::vector<NodeIndex> path;
  NodeIndex cur = from;
  while (true) {
    const NodeIndex next = next_hop(cur, key);
    if (next == kInvalidNode) break;
    path.push_back(next);
    cur = next;
    if (path.size() > impl_->ids.size()) {
      throw std::logic_error("chord: routing loop detected");
    }
  }
  return path;
}

std::span<const NodeIndex> ChordOverlay::neighbors(NodeIndex node) const {
  return impl_->fingers(node);
}

}  // namespace p2prank::overlay
