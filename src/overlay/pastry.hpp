// Pastry overlay simulator (Rowstron & Druschel, Middleware 2001).
//
// Ids are strings of base-2^b digits. Each node keeps
//   * a routing table: row r, column c holds a node sharing exactly r
//     leading digits with this node and whose digit r equals c;
//   * a leaf set: the L nodes with numerically closest ids (L/2 per side,
//     wrapping in id order).
// Forwarding (next_hop) uses only this local state and follows the paper's
// rule: deliver via the leaf set when the key is in leaf range, otherwise
// jump to the routing-table entry that extends the shared prefix by one
// digit, otherwise to any known node strictly closer to the key. Expected
// route length is ceil(log_{2^b} N) — the 2.5/3.5/4.0 hop numbers the page-
// ranking paper quotes for N = 1e3/1e4/1e5 at b = 4.
#pragma once

#include <memory>

#include "overlay/overlay.hpp"

namespace p2prank::overlay {

struct PastryConfig {
  std::uint32_t num_nodes = 0;
  int bits_per_digit = 4;   ///< the protocol's b; base = 2^b
  int leaf_set_size = 16;   ///< total L (L/2 per side)
  std::uint64_t seed = 1;   ///< node-id assignment seed
};

class PastryOverlay final : public Overlay {
 public:
  explicit PastryOverlay(const PastryConfig& cfg);
  ~PastryOverlay() override;

  PastryOverlay(PastryOverlay&&) noexcept;
  PastryOverlay& operator=(PastryOverlay&&) noexcept;

  [[nodiscard]] std::string_view name() const noexcept override { return "pastry"; }
  [[nodiscard]] std::size_t num_nodes() const noexcept override;
  [[nodiscard]] NodeId id_of(NodeIndex node) const override;
  [[nodiscard]] NodeIndex responsible_node(const NodeId& key) const override;
  [[nodiscard]] std::vector<NodeIndex> route(NodeIndex from,
                                             const NodeId& key) const override;
  [[nodiscard]] std::span<const NodeIndex> neighbors(NodeIndex node) const override;
  [[nodiscard]] NodeIndex next_hop(NodeIndex from, const NodeId& key) const override;

  /// Routing-table entry (r, c) of a node, kInvalidNode when empty.
  [[nodiscard]] NodeIndex table_entry(NodeIndex node, int row, int col) const;
  /// Leaf set of a node (excludes the node itself).
  [[nodiscard]] std::span<const NodeIndex> leaf_set(NodeIndex node) const;
  [[nodiscard]] int num_rows() const noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace p2prank::overlay
