// Versioned, checksummed wire frame for Y-slice exchange.
//
// The chaos fault plane (fault_plane.hpp) can flip arbitrary bytes of a
// frame in flight; ROADMAP item 3 (real socket transport) will face the
// same garbage from the network. Every frame therefore carries a magic
// word, a format version, and a trailing FNV-1a checksum over everything
// that precedes it. decode_frame() validates all three plus the payload
// shape (strictly ascending local indices, finite non-negative scores)
// and returns a verdict instead of throwing — a corrupted frame must be
// quarantinable on the hot path without unwinding.
//
// Format (all integers varint/LEB128 unless noted):
//   magic (4 bytes LE) | version | src | dst | epoch | record_count |
//   entry_count | entries: (index delta, score as 8-byte LE double)* |
//   checksum (8 bytes LE, FNV-1a over all preceding bytes)
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace p2prank::transport {

/// Wire-format version literal (p2plint wire-format-version): "p2prank-frame v1".
inline constexpr std::uint32_t kFrameMagic = 0x50325246;  // "P2RF"
inline constexpr std::uint64_t kFrameVersion = 1;

/// Why a frame was accepted or quarantined.
enum class FrameVerdict : std::uint8_t {
  kOk,
  kTruncated,      ///< ran out of bytes mid-field
  kBadMagic,       ///< first four bytes are not kFrameMagic
  kBadVersion,     ///< version != kFrameVersion
  kBadChecksum,    ///< trailing FNV-1a mismatch
  kBadCount,       ///< entry count inconsistent with payload size
  kBadIndexOrder,  ///< local indices not strictly ascending
  kBadScore,       ///< NaN / Inf / negative score
};

[[nodiscard]] const char* frame_verdict_name(FrameVerdict v) noexcept;

/// Frame addressing + payload accounting carried alongside the entries.
struct FrameHeader {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint64_t epoch = 0;
  std::uint64_t record_count = 0;  ///< contributing link records (cost model)
};

struct DecodedFrame {
  FrameHeader header;
  std::vector<std::pair<std::uint32_t, double>> entries;
};

/// True iff entries are strictly ascending by index with finite,
/// non-negative scores — the shape refresh_x() assumes. Shared by the
/// codec and the engine's poisoned-slice guard.
[[nodiscard]] bool entries_valid(
    std::span<const std::pair<std::uint32_t, double>> entries) noexcept;

/// Encode one frame. Entries must satisfy entries_valid().
[[nodiscard]] std::vector<std::uint8_t> encode_frame(
    const FrameHeader& header,
    std::span<const std::pair<std::uint32_t, double>> entries);

/// Validate + decode. On any verdict other than kOk, `out` is untouched
/// and the frame must be quarantined (counted, never applied).
[[nodiscard]] FrameVerdict decode_frame(std::span<const std::uint8_t> bytes,
                                        DecodedFrame& out);

}  // namespace p2prank::transport
