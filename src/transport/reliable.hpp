// Reliable score exchange: the per-pair bookkeeping that turns the engine's
// fire-and-forget Y channel into an ordered, acknowledged one.
//
// The paper's DPR1/DPR2 merely *tolerate* loss (Section 5's p sweeps show
// convergence slowing as messages vanish) and silently assume in-order
// delivery. A deployment needs more: once delivery latency jitters, a
// delayed older Y slice can arrive after — and overwrite — a newer one, and
// a lost slice is only repaired at the sender's next full loop step (mean
// wait up to T2). This layer supplies the three missing pieces, kept
// payload-agnostic so the transport library stays independent of the
// engine's YSlice type (the engine owns the payload buffers; this class
// owns epochs, timers' verdicts, and suspicion):
//
//  * Epochs. Every send on an ordered pair (src, dst) is stamped with a
//    per-pair monotone epoch. The receiver accepts a slice iff its epoch
//    exceeds the pair's high-water mark, so reordered stale slices are
//    rejected instead of clobbering newer X entries. Epochs are a property
//    of the *transport session*: they survive ranker crashes and churn
//    rebuilds (a crash wipes application state, not the channel's sequence
//    numbers), which keeps "accepted epoch per pair is non-decreasing" an
//    unconditional machine-checkable invariant.
//
//  * Ack / retransmit. Each pair holds at most one unacked epoch — a newer
//    send supersedes the older (the superseded payload is dropped by the
//    caller, so the retransmit buffer is O(1) per peer, O(K) per ranker).
//    Acks are cumulative: an ack for epoch e clears any pending epoch <= e.
//    Retransmit timers back off exponentially (rto_initial, x rto_backoff,
//    capped at rto_max) with multiplicative jitter so retransmissions from
//    many pairs do not synchronize.
//
//  * Failure detection. suspicion_after expired timers without an
//    intervening ack mark the peer suspected; further retransmits for the
//    pair are parked (fresh sends still go out and double as probes). A
//    timer whose epoch was superseded by a newer fresh send still counts a
//    strike when that epoch was never acked — otherwise a sender whose loop
//    interval undercuts the rto would supersede every pending epoch before
//    its timer fired and a hard partition could never trip suspicion. Any
//    evidence of life — an ack, or data received *from* the peer — clears
//    suspicion and resets the backoff, so a rebooted or un-partitioned peer
//    resumes promptly. Data and ack traffic double as heartbeats: every ranker
//    loop step ships a Y slice to each efferent peer, so a healthy pair is
//    never silent for longer than one step interval.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "util/rng.hpp"
#include "util/thread_annotations.hpp"

namespace p2prank::transport {

/// Per-pair send sequence number. 0 is reserved for "nothing yet".
using Epoch = std::uint64_t;

struct ReliableOptions {
  double rto_initial = 1.0;   ///< first retransmit timeout (virtual time)
  double rto_backoff = 2.0;   ///< multiplier per retransmission (>= 1)
  double rto_max = 8.0;       ///< backoff cap
  double rto_jitter = 0.25;   ///< timer delay is rto * (1 + U[0, jitter))
  std::uint32_t suspicion_after = 4;  ///< missed-ack timers before suspicion
};

class ReliableExchange {
 public:
  /// What the caller should do when a retransmit timer fires.
  enum class TimerVerdict {
    kRetransmit,  ///< still pending: re-send the buffered payload, re-arm
    kSuperseded,  ///< a newer epoch replaced this one: timer is dead
    kAcked,       ///< the epoch was acked meanwhile: timer is dead
    kSuspectNow,  ///< this strike crossed the threshold: peer now suspected,
                  ///< park retransmits (and optionally decay its X share)
    kParked,      ///< already suspected: keep parked
  };

  ReliableExchange(ReliableOptions opts, std::uint64_t seed);

  // --- Sender side ---------------------------------------------------------

  /// Stamp a fresh send on (src, dst): assigns the next epoch and makes it
  /// the pair's (single) pending epoch, superseding any older one. The
  /// caller replaces its buffered payload accordingly.
  [[nodiscard]] Epoch begin_send(std::uint32_t src, std::uint32_t dst);

  /// Delay until the pending epoch's next retransmit check: current RTO
  /// with a fresh jitter draw. Call once per (re)send to arm the timer.
  [[nodiscard]] double timer_delay(std::uint32_t src, std::uint32_t dst);

  /// A retransmit timer armed for `epoch` fired. On kRetransmit the attempt
  /// counter and backoff advance; on kSuspectNow the pair is marked
  /// suspected (counted in suspicion_events()). A superseded-but-unacked
  /// epoch's timer counts a strike (possibly returning kSuspectNow) without
  /// advancing the backoff — the newer epoch's timer chain owns that.
  [[nodiscard]] TimerVerdict on_timer(std::uint32_t src, std::uint32_t dst,
                                      Epoch epoch);

  /// Cumulative ack for (src, dst) arrived: every epoch <= `value` is
  /// delivered. Clears suspicion (definite evidence of life) and resets the
  /// backoff. Returns true when this cleared the pending epoch — the caller
  /// drops its buffered payload.
  bool on_ack(std::uint32_t src, std::uint32_t dst, Epoch value);

  /// Evidence that `peer` is alive reached `observer` outside the ack path
  /// (typically: observer received a data slice from peer). Clears
  /// suspicion and resets backoff on (observer -> peer). Returns true when
  /// the pair was suspected AND still has a pending epoch — the caller
  /// should re-arm a retransmit for it.
  bool peer_alive(std::uint32_t observer, std::uint32_t peer);

  [[nodiscard]] bool suspected(std::uint32_t src, std::uint32_t dst) const;
  [[nodiscard]] Epoch pending_epoch(std::uint32_t src, std::uint32_t dst) const;

  /// Drop every pending epoch and reset backoff/suspicion, keeping the
  /// epoch counters (churn rebuilt the payload wiring; buffered slices
  /// reference dead local indices and must not be retransmitted).
  void reset_pending();
  /// Same, but only for pairs where `src` is the sender (src crashed: its
  /// in-memory transmit buffers are gone; the channel's sequence numbers
  /// are not).
  void reset_sender(std::uint32_t src);

  // --- Receiver side -------------------------------------------------------

  /// Epoch filter: accept iff `epoch` exceeds the pair's high-water mark
  /// (then advances it). A rejection is counted in duplicates_rejected().
  bool accept(std::uint32_t src, std::uint32_t dst, Epoch epoch);

  /// Receiver high-water mark — the value a cumulative ack carries.
  [[nodiscard]] Epoch accepted_epoch(std::uint32_t src, std::uint32_t dst) const;

  // --- Counters ------------------------------------------------------------

  [[nodiscard]] std::uint64_t duplicates_rejected() const noexcept {
    return duplicates_rejected_;
  }
  /// Timers that found their epoch pending yet already acked — impossible
  /// by construction (an ack clears the pending epoch), so any nonzero
  /// value is a regression tripwire the invariant checker asserts on.
  [[nodiscard]] std::uint64_t zombie_retransmits() const noexcept {
    return zombie_retransmits_;
  }
  [[nodiscard]] std::uint64_t suspicion_events() const noexcept {
    return suspicion_events_;
  }
  [[nodiscard]] std::uint32_t suspected_pairs() const noexcept {
    return suspected_pairs_;
  }
  [[nodiscard]] std::uint64_t pending_pairs() const noexcept {
    return pending_pairs_;
  }

 private:
  struct PairState {
    Epoch next_epoch = 1;     // sender: next epoch to assign
    Epoch pending = 0;        // sender: unacked epoch (0 = none)
    Epoch acked = 0;          // sender: cumulative ack high-water mark
    Epoch accepted = 0;       // receiver: accept high-water mark
    double rto = 0.0;         // current timeout (0 = rto_initial not applied)
    std::uint32_t attempts = 0;
    bool suspected = false;
  };

  static std::uint64_t key(std::uint32_t src, std::uint32_t dst) noexcept {
    return (static_cast<std::uint64_t>(src) << 32) | dst;
  }
  PairState& state(std::uint32_t src, std::uint32_t dst);
  [[nodiscard]] const PairState* find(std::uint32_t src, std::uint32_t dst) const;
  void clear_suspicion(PairState& st);
  void reset_transient(PairState& st);

  // Thread-confinement contract (DESIGN.md §9): a ReliableExchange belongs
  // to the simulation thread that owns the engine driving it. Nothing here
  // is locked; every mutable member below declares that explicitly. The
  // ThreadPool's fork-join workers must never be handed a reference.
  ReliableOptions opts_;
  util::Rng rng_ P2P_EXTERNALLY_SYNCHRONIZED;  // jitter draws advance state
  std::unordered_map<std::uint64_t, PairState> pairs_ P2P_EXTERNALLY_SYNCHRONIZED;
  std::uint64_t duplicates_rejected_ P2P_EXTERNALLY_SYNCHRONIZED = 0;
  std::uint64_t zombie_retransmits_ P2P_EXTERNALLY_SYNCHRONIZED = 0;
  std::uint64_t suspicion_events_ P2P_EXTERNALLY_SYNCHRONIZED = 0;
  std::uint32_t suspected_pairs_ P2P_EXTERNALLY_SYNCHRONIZED = 0;
  std::uint64_t pending_pairs_ P2P_EXTERNALLY_SYNCHRONIZED = 0;
};

}  // namespace p2prank::transport
