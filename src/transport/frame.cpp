#include "transport/frame.hpp"

#include <bit>
#include <cmath>
#include <cstring>
#include <string_view>

#include "transport/wire.hpp"
#include "util/hash.hpp"

namespace p2prank::transport {

namespace {

// Exception-free little-endian reader: a corrupted length field must not
// turn into a throw (or worse, a huge allocation) on the delivery path.
class FrameReader {
 public:
  explicit FrameReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  bool read_u32le(std::uint32_t& out) noexcept {
    if (bytes_.size() - pos_ < 4) return false;
    std::uint32_t v = 0;
    std::memcpy(&v, bytes_.data() + pos_, 4);
    if constexpr (std::endian::native == std::endian::big) {
      v = __builtin_bswap32(v);
    }
    pos_ += 4;
    out = v;
    return true;
  }

  bool read_varint(std::uint64_t& out) noexcept {
    std::uint64_t value = 0;
    int shift = 0;
    while (pos_ < bytes_.size() && shift < 64) {
      const std::uint8_t byte = bytes_[pos_++];
      value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) {
        out = value;
        return true;
      }
      shift += 7;
    }
    return false;  // truncated or over-long
  }

  bool read_double(double& out) noexcept {
    if (bytes_.size() - pos_ < 8) return false;
    std::uint64_t v = 0;
    std::memcpy(&v, bytes_.data() + pos_, 8);
    if constexpr (std::endian::native == std::endian::big) {
      v = __builtin_bswap64(v);
    }
    pos_ += 8;
    out = std::bit_cast<double>(v);
    return true;
  }

  [[nodiscard]] std::size_t remaining() const noexcept {
    return bytes_.size() - pos_;
  }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

void put_u32le(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64le(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_double_le(std::vector<std::uint8_t>& out, double d) {
  put_u64le(out, std::bit_cast<std::uint64_t>(d));
}

std::uint64_t frame_checksum(std::span<const std::uint8_t> bytes) {
  return util::fnv1a(std::string_view(
      reinterpret_cast<const char*>(bytes.data()), bytes.size()));
}

}  // namespace

const char* frame_verdict_name(FrameVerdict v) noexcept {
  switch (v) {
    case FrameVerdict::kOk:
      return "ok";
    case FrameVerdict::kTruncated:
      return "truncated";
    case FrameVerdict::kBadMagic:
      return "bad-magic";
    case FrameVerdict::kBadVersion:
      return "bad-version";
    case FrameVerdict::kBadChecksum:
      return "bad-checksum";
    case FrameVerdict::kBadCount:
      return "bad-count";
    case FrameVerdict::kBadIndexOrder:
      return "bad-index-order";
    case FrameVerdict::kBadScore:
      return "bad-score";
  }
  return "unknown";
}

bool entries_valid(
    std::span<const std::pair<std::uint32_t, double>> entries) noexcept {
  std::uint64_t prev = 0;
  bool first = true;
  for (const auto& [index, score] : entries) {
    if (!first && index <= prev) return false;
    if (!std::isfinite(score) || score < 0.0) return false;
    prev = index;
    first = false;
  }
  return true;
}

std::vector<std::uint8_t> encode_frame(
    const FrameHeader& header,
    std::span<const std::pair<std::uint32_t, double>> entries) {
  std::vector<std::uint8_t> out;
  out.reserve(32 + entries.size() * 10);
  put_u32le(out, kFrameMagic);
  put_varint(out, kFrameVersion);
  put_varint(out, header.src);
  put_varint(out, header.dst);
  put_varint(out, header.epoch);
  put_varint(out, header.record_count);
  put_varint(out, entries.size());
  std::uint32_t prev = 0;
  bool first = true;
  for (const auto& [index, score] : entries) {
    // Delta-code strictly ascending indices (first entry stores the index
    // itself; later entries store index - prev, always >= 1).
    put_varint(out, first ? index : index - prev);
    put_double_le(out, score);
    prev = index;
    first = false;
  }
  const std::uint64_t sum =
      frame_checksum(std::span<const std::uint8_t>(out.data(), out.size()));
  put_u64le(out, sum);
  return out;
}

FrameVerdict decode_frame(std::span<const std::uint8_t> bytes,
                          DecodedFrame& out) {
  // Checksum first: once it matches, the remaining fields are exactly what
  // the encoder wrote and parsing cannot go wrong; if it does not match we
  // never trust a length field.
  if (bytes.size() < 12) return FrameVerdict::kTruncated;
  std::uint64_t trailer = 0;
  std::memcpy(&trailer, bytes.data() + bytes.size() - 8, 8);
  if constexpr (std::endian::native == std::endian::big) {
    trailer = __builtin_bswap64(trailer);
  }
  const std::uint64_t expect = frame_checksum(bytes.first(bytes.size() - 8));
  FrameReader reader(bytes.first(bytes.size() - 8));
  std::uint32_t magic = 0;
  if (!reader.read_u32le(magic)) return FrameVerdict::kTruncated;
  if (magic != kFrameMagic) return FrameVerdict::kBadMagic;
  std::uint64_t version = 0;
  if (!reader.read_varint(version)) return FrameVerdict::kTruncated;
  if (version != kFrameVersion) return FrameVerdict::kBadVersion;
  if (trailer != expect) return FrameVerdict::kBadChecksum;
  DecodedFrame frame;
  std::uint64_t src = 0;
  std::uint64_t dst = 0;
  if (!reader.read_varint(src) || !reader.read_varint(dst) ||
      !reader.read_varint(frame.header.epoch) ||
      !reader.read_varint(frame.header.record_count)) {
    return FrameVerdict::kTruncated;
  }
  frame.header.src = static_cast<std::uint32_t>(src);
  frame.header.dst = static_cast<std::uint32_t>(dst);
  std::uint64_t count = 0;
  if (!reader.read_varint(count)) return FrameVerdict::kTruncated;
  // Each entry is at least 9 bytes (1-byte delta + 8-byte score).
  if (count > reader.remaining() / 9) return FrameVerdict::kBadCount;
  frame.entries.reserve(count);
  std::uint64_t index = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t delta = 0;
    double score = 0.0;
    if (!reader.read_varint(delta) || !reader.read_double(score)) {
      return FrameVerdict::kTruncated;
    }
    index += delta;
    if (i > 0 && delta == 0) return FrameVerdict::kBadIndexOrder;
    if (index > UINT32_MAX) return FrameVerdict::kBadIndexOrder;
    if (!std::isfinite(score) || score < 0.0) return FrameVerdict::kBadScore;
    frame.entries.emplace_back(static_cast<std::uint32_t>(index), score);
  }
  if (reader.remaining() != 0) return FrameVerdict::kBadCount;
  out = std::move(frame);
  return FrameVerdict::kOk;
}

}  // namespace p2prank::transport
