// Score exchange between page rankers: direct vs indirect transmission
// (Section 4.4 of the paper).
//
// One *exchange round* ships, for every ranker, its updated efferent scores
// to every ranker that hosts a link target. Records have the wire format
// <url_from, url_to, score> (~100 bytes, Section 4.5). Two schemes:
//
//  * Direct transmission: the sender looks up the destination's IP via an
//    overlay lookup (h routed messages of size r) and then sends one
//    point-to-point data message. Per iteration: S_dt = (h+1)·N² messages,
//    D_dt = l·W + h·r·N² bytes.
//
//  * Indirect transmission: data messages *are* routed through the overlay.
//    Each node packs everything bound for the same next hop into one
//    package; every intermediate node unpacks, recombines by destination,
//    and repacks. Per iteration: S_it = g·N messages (g = neighbors/node),
//    D_it = h·l·W bytes — fewer, larger messages, no lookups.
//
// The simulation here executes an actual exchange over an actual overlay
// and counts messages/bytes/hops; the closed-form predictions live in
// cost/ for comparison. Record *counts* (not materialized payloads) flow
// through the simulation, which keeps full N-to-N exchanges tractable.
#pragma once

#include <cstdint>
#include <vector>

#include "overlay/overlay.hpp"

namespace p2prank::obs {
class MetricsRegistry;
}

namespace p2prank::transport {

/// Sparse demand matrix: how many score records each source ranker must
/// deliver to each destination ranker this round. Ranker i lives on overlay
/// node i.
class ExchangeDemand {
 public:
  explicit ExchangeDemand(std::uint32_t num_rankers);

  void add(overlay::NodeIndex src, overlay::NodeIndex dst, std::uint64_t records);

  [[nodiscard]] std::uint32_t num_rankers() const noexcept {
    return static_cast<std::uint32_t>(out_.size());
  }
  [[nodiscard]] const std::vector<std::pair<overlay::NodeIndex, std::uint64_t>>& from(
      overlay::NodeIndex src) const {
    return out_.at(src);
  }
  [[nodiscard]] std::uint64_t total_records() const noexcept { return total_; }

  /// All-pairs demand with `records_per_pair` records on every ordered pair
  /// (the worst case the paper's O(N²) argument assumes).
  [[nodiscard]] static ExchangeDemand all_pairs(std::uint32_t num_rankers,
                                                std::uint64_t records_per_pair);

 private:
  std::vector<std::vector<std::pair<overlay::NodeIndex, std::uint64_t>>> out_;
  std::uint64_t total_ = 0;
};

struct WireFormat {
  double record_bytes = 100.0;  ///< <url_from, url_to, score>, Section 4.5
  double lookup_bytes = 50.0;   ///< one routed lookup message (the paper's r)
  double header_bytes = 40.0;   ///< per-message envelope
};

struct TransmissionReport {
  std::uint64_t data_messages = 0;
  std::uint64_t lookup_messages = 0;
  double data_bytes = 0.0;
  double lookup_bytes = 0.0;
  std::uint64_t records_delivered = 0;
  /// Sum over records of hops traveled (indirect) or 1 (direct data hop).
  std::uint64_t record_hops = 0;
  /// Forwarding rounds until fully drained (indirect; 1 for direct).
  std::uint64_t rounds = 0;
  /// Largest per-node outbound byte count — the bottleneck-bandwidth driver.
  double max_node_out_bytes = 0.0;
  /// Bytes re-shipped by a reliability layer. Always 0 here: the one-shot
  /// exchange simulations model a loss-free synchronous round, so
  /// data_bytes is exactly the §4.5 D quantity. The field exists so every
  /// consumer of a report sees the fresh/retransmit split explicitly — the
  /// engine's reliable layer accounts its re-shipped bytes in the
  /// `transport.retransmit_bytes` metric, never by inflating data bytes.
  double retransmit_bytes = 0.0;

  [[nodiscard]] std::uint64_t total_messages() const noexcept {
    return data_messages + lookup_messages;
  }
  [[nodiscard]] double total_bytes() const noexcept {
    return data_bytes + lookup_bytes;
  }
};

/// Direct transmission of one exchange round. When `cache_lookups` is true
/// the destination addresses are assumed known (lookup cost zero) — an
/// ablation of how much of direct transmission's cost is lookups.
/// A non-null `metrics` additionally receives the report's totals under
/// the exchange.* names plus a per-message byte-size histogram
/// (DESIGN.md §11); pass one registry per scheme to compare runs.
[[nodiscard]] TransmissionReport run_direct_exchange(
    const overlay::Overlay& o, const ExchangeDemand& demand, const WireFormat& wire,
    bool cache_lookups = false, obs::MetricsRegistry* metrics = nullptr);

/// Indirect transmission of one exchange round: synchronized forwarding
/// rounds; per round every holding node packs per-next-hop packages.
/// `metrics` as in run_direct_exchange.
[[nodiscard]] TransmissionReport run_indirect_exchange(
    const overlay::Overlay& o, const ExchangeDemand& demand, const WireFormat& wire,
    obs::MetricsRegistry* metrics = nullptr);

}  // namespace p2prank::transport
