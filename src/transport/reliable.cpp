#include "transport/reliable.hpp"

#include <algorithm>
#include <stdexcept>

namespace p2prank::transport {

ReliableExchange::ReliableExchange(ReliableOptions opts, std::uint64_t seed)
    : opts_(opts), rng_(seed) {
  if (!(opts_.rto_initial > 0.0)) {
    throw std::invalid_argument("ReliableOptions::rto_initial: must be > 0");
  }
  if (!(opts_.rto_backoff >= 1.0)) {
    throw std::invalid_argument("ReliableOptions::rto_backoff: must be >= 1");
  }
  if (!(opts_.rto_max >= opts_.rto_initial)) {
    throw std::invalid_argument("ReliableOptions::rto_max: must be >= rto_initial");
  }
  if (!(opts_.rto_jitter >= 0.0)) {
    throw std::invalid_argument("ReliableOptions::rto_jitter: must be >= 0");
  }
  if (opts_.suspicion_after == 0) {
    throw std::invalid_argument("ReliableOptions::suspicion_after: must be >= 1");
  }
}

ReliableExchange::PairState& ReliableExchange::state(std::uint32_t src,
                                                     std::uint32_t dst) {
  return pairs_[key(src, dst)];
}

const ReliableExchange::PairState* ReliableExchange::find(std::uint32_t src,
                                                          std::uint32_t dst) const {
  const auto it = pairs_.find(key(src, dst));
  return it == pairs_.end() ? nullptr : &it->second;
}

void ReliableExchange::clear_suspicion(PairState& st) {
  if (st.suspected) {
    st.suspected = false;
    --suspected_pairs_;
  }
  st.attempts = 0;
  st.rto = opts_.rto_initial;
}

void ReliableExchange::reset_transient(PairState& st) {
  if (st.pending != 0) {
    st.pending = 0;
    --pending_pairs_;
  }
  clear_suspicion(st);
}

Epoch ReliableExchange::begin_send(std::uint32_t src, std::uint32_t dst) {
  PairState& st = state(src, dst);
  const Epoch epoch = st.next_epoch++;
  if (st.pending == 0) {
    ++pending_pairs_;
    // Healthy pair (nothing outstanding): start from a fresh backoff.
    st.attempts = 0;
    st.rto = opts_.rto_initial;
  }
  // A prior epoch is still unacked: keep the backed-off rto and strike
  // count. Resetting here let every fresh send restart the timer at
  // rto_initial, so a long partition produced an unbounded retransmit
  // storm at the minimum interval and suspicion could never trip.
  st.pending = epoch;  // supersedes any older unacked epoch
  return epoch;
}

double ReliableExchange::timer_delay(std::uint32_t src, std::uint32_t dst) {
  PairState& st = state(src, dst);
  const double rto = st.rto > 0.0 ? st.rto : opts_.rto_initial;
  return rto * (1.0 + (opts_.rto_jitter > 0.0 ? rng_.uniform(0.0, opts_.rto_jitter)
                                              : 0.0));
}

ReliableExchange::TimerVerdict ReliableExchange::on_timer(std::uint32_t src,
                                                          std::uint32_t dst,
                                                          Epoch epoch) {
  PairState& st = state(src, dst);
  if (st.pending == 0) return TimerVerdict::kSuperseded;  // acked or reset
  if (st.pending != epoch) {
    // A newer send superseded this epoch while the pair is still unacked.
    // If the superseded epoch itself was never acked, its expired timer is
    // still a missed-ack strike for the pair: a sender whose loop interval
    // undercuts the rto replaces the pending epoch before any timer can
    // fire for it, and without counting these a hard partition never trips
    // suspicion. The newer epoch's chain owns retransmission and backoff —
    // this timer dies either way (no kRetransmit, no rto advance).
    if (epoch <= st.acked || st.suspected) return TimerVerdict::kSuperseded;
    ++st.attempts;
    if (st.attempts >= opts_.suspicion_after) {
      st.suspected = true;
      ++suspected_pairs_;
      ++suspicion_events_;
      return TimerVerdict::kSuspectNow;
    }
    return TimerVerdict::kSuperseded;
  }
  if (st.acked >= epoch) {
    // on_ack clears the pending epoch whenever acked >= pending, so a timer
    // can never find its epoch both pending and acked. If one does, the
    // accounting regressed — record the zombie for the invariant checker.
    ++zombie_retransmits_;
    return TimerVerdict::kAcked;
  }
  if (st.suspected) return TimerVerdict::kParked;
  ++st.attempts;
  if (st.attempts >= opts_.suspicion_after) {
    st.suspected = true;
    ++suspected_pairs_;
    ++suspicion_events_;
    return TimerVerdict::kSuspectNow;
  }
  st.rto = std::min(st.rto * opts_.rto_backoff, opts_.rto_max);
  return TimerVerdict::kRetransmit;
}

bool ReliableExchange::on_ack(std::uint32_t src, std::uint32_t dst, Epoch value) {
  PairState& st = state(src, dst);
  st.acked = std::max(st.acked, value);
  clear_suspicion(st);  // an ack is definite evidence the peer is alive
  if (st.pending != 0 && st.acked >= st.pending) {
    st.pending = 0;
    --pending_pairs_;
    return true;
  }
  return false;
}

bool ReliableExchange::peer_alive(std::uint32_t observer, std::uint32_t peer) {
  const auto it = pairs_.find(key(observer, peer));
  if (it == pairs_.end()) return false;
  PairState& st = it->second;
  const bool was_parked = st.suspected && st.pending != 0;
  clear_suspicion(st);
  return was_parked;
}

bool ReliableExchange::suspected(std::uint32_t src, std::uint32_t dst) const {
  const PairState* st = find(src, dst);
  return st != nullptr && st->suspected;
}

Epoch ReliableExchange::pending_epoch(std::uint32_t src, std::uint32_t dst) const {
  const PairState* st = find(src, dst);
  return st == nullptr ? 0 : st->pending;
}

void ReliableExchange::reset_pending() {
  // p2plint: allow(no-unordered-iteration): reset_transient touches only
  // the entry it visits (plus integer counters) — order-independent.
  for (auto& [k, st] : pairs_) reset_transient(st);
}

void ReliableExchange::reset_sender(std::uint32_t src) {
  // p2plint: allow(no-unordered-iteration): per-entry reset, as above.
  for (auto& [k, st] : pairs_) {
    if (static_cast<std::uint32_t>(k >> 32) == src) reset_transient(st);
  }
}

bool ReliableExchange::accept(std::uint32_t src, std::uint32_t dst, Epoch epoch) {
  PairState& st = state(src, dst);
  if (epoch > st.accepted) {
    st.accepted = epoch;
    return true;
  }
  ++duplicates_rejected_;
  return false;
}

Epoch ReliableExchange::accepted_epoch(std::uint32_t src, std::uint32_t dst) const {
  const PairState* st = find(src, dst);
  return st == nullptr ? 0 : st->accepted;
}

}  // namespace p2prank::transport
