// Wire encoding of score-exchange messages.
//
// Section 4.5 assumes the naive format: "<url_from, url_to, score> ...
// Given an average URL size of 40 bytes, the average size of one link is
// roughly 100 bytes", and its conclusion names compression as future work.
// This module implements that future work:
//
//   * varint (LEB128) integer coding,
//   * front-coding of URLs — records sorted by (url_from, url_to) share
//     long prefixes (hash-by-site means a ranker's outgoing records are
//     dominated by a handful of sites), so each URL stores only
//     (shared-prefix length, suffix);
//   * optional lossy score quantization to a configurable number of
//     significant bits (rank exchange tolerates small absolute error — the
//     iteration is a contraction and the send threshold already bounds
//     per-entry staleness).
//
// encode/decode round-trip exactly (bit-exact scores when quantization is
// off). The ablation_compression bench measures the resulting bytes/record
// against the paper's 100-byte estimate.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace p2prank::transport {

/// One <url_from, url_to, score> record (views into caller-owned storage
/// when encoding).
struct ScoreRecord {
  std::string_view url_from;
  std::string_view url_to;
  double score = 0.0;
};

/// Decoded record owning its strings.
struct OwnedScoreRecord {
  std::string url_from;
  std::string url_to;
  double score = 0.0;
};

/// Append a varint (LEB128) to out.
void put_varint(std::vector<std::uint8_t>& out, std::uint64_t value);

/// Cursor-based reader with bounds checking; throws std::runtime_error on
/// truncated input.
class WireReader {
 public:
  explicit WireReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  [[nodiscard]] std::uint64_t read_varint();
  [[nodiscard]] std::string_view read_bytes(std::size_t n);
  [[nodiscard]] double read_double();  ///< 8-byte little-endian IEEE 754
  [[nodiscard]] bool at_end() const noexcept { return pos_ == bytes_.size(); }
  [[nodiscard]] std::size_t position() const noexcept { return pos_; }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

struct WireOptions {
  /// Sort + front-code URLs (lossless). Off stores every URL in full.
  bool front_coding = true;
  /// 0 = exact 8-byte scores. Otherwise scores are stored as
  /// round(score · 2^quantize_bits) in a varint — absolute error is at most
  /// 2^-(quantize_bits+1). 20 bits keeps error below 5e-7.
  int quantize_bits = 0;
};

/// Encode a batch of records (one exchange message). The input span is not
/// modified; encoding sorts an index internally when front-coding.
[[nodiscard]] std::vector<std::uint8_t> encode_records(
    std::span<const ScoreRecord> records, const WireOptions& opts = {});

/// Decode a batch. Order matches encoding order (sorted when front-coded).
[[nodiscard]] std::vector<OwnedScoreRecord> decode_records(
    std::span<const std::uint8_t> bytes);

/// The paper's back-of-envelope estimate for one record (Section 4.5).
inline constexpr double kNaiveRecordBytes = 100.0;

}  // namespace p2prank::transport
