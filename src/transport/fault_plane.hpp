// Per-directed-link fault model: partitions and frame corruption.
//
// LossModel (sim/processes.hpp) models symmetric, link-independent message
// loss. This layer adds the failure modes a structured P2P overlay actually
// sees (DESIGN.md §13):
//
//   * partitions as node-set cuts: one active cut at a time, side A given
//     as a group bitmask, with *asymmetric* delivery probabilities for
//     A→B and B→A traffic (0 = hard cut, small p = lossy one-way link);
//   * heal events that clear the cut;
//   * byte-level frame corruption with probability `corrupt` per frame,
//     flipping 1–4 random bytes (the frame checksum must catch them all).
//
// Determinism contract: the plane owns a seeded RNG and draws from it ONLY
// while a cut (or corruption) is active. Legacy scenarios never activate it,
// so every pre-existing seed replays bit-identically; LossModel's
// one-draw-per-send stream is never touched (callers must draw from the
// loss model FIRST, then consult the plane).
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace p2prank::transport {

class FaultPlane {
 public:
  explicit FaultPlane(std::uint64_t seed) : rng_(seed) {}

  /// Install a cut. Groups whose bit is set in `side_a_mask` form side A
  /// (groups >= 64 always count as side B). `deliver_ab` / `deliver_ba`
  /// are the delivery probabilities for messages crossing A→B / B→A.
  void set_partition(std::uint64_t side_a_mask, double deliver_ab,
                     double deliver_ba) noexcept;

  /// Clear the active cut (corruption is independent and unaffected).
  void heal() noexcept { active_ = false; }

  [[nodiscard]] bool partitioned() const noexcept { return active_; }

  /// Per-frame corruption probability; 0 disables.
  void set_corruption(double probability) noexcept;

  [[nodiscard]] bool corruption_enabled() const noexcept {
    return corrupt_probability_ > 0.0;
  }

  /// One send src→dst: true if the message survives the cut. Draws from
  /// the plane's RNG only when a cut is active and the link crosses it.
  [[nodiscard]] bool deliver(std::uint32_t src, std::uint32_t dst) noexcept;

  /// Deterministic link probe (no RNG draw): false only while a hard cut
  /// (delivery probability 0 in that direction) separates src from dst.
  /// The RecoverySupervisor uses this as its heal detector.
  [[nodiscard]] bool link_up(std::uint32_t src,
                             std::uint32_t dst) const noexcept;

  /// Maybe flip 1–4 random bytes of `frame` in place. Returns true if the
  /// frame was corrupted. Draws only while corruption is enabled.
  [[nodiscard]] bool maybe_corrupt(std::vector<std::uint8_t>& frame) noexcept;

  [[nodiscard]] std::uint64_t partition_drops() const noexcept {
    return partition_drops_;
  }
  [[nodiscard]] std::uint64_t frames_corrupted() const noexcept {
    return frames_corrupted_;
  }

 private:
  [[nodiscard]] bool side_a(std::uint32_t group) const noexcept {
    return group < 64 && (side_a_mask_ >> group & 1) != 0;
  }

  util::Rng rng_;
  bool active_ = false;
  std::uint64_t side_a_mask_ = 0;
  double deliver_ab_ = 1.0;
  double deliver_ba_ = 1.0;
  double corrupt_probability_ = 0.0;
  std::uint64_t partition_drops_ = 0;
  std::uint64_t frames_corrupted_ = 0;
};

}  // namespace p2prank::transport
