#include "transport/wire.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <numeric>

namespace p2prank::transport {

namespace {

// Format:
//   varint header_flags   (bit 0: front coding)
//   varint quantize_bits
//   varint record_count
//   per record:
//     varint shared_from, varint suffix_from_len, suffix bytes
//     varint shared_to,   varint suffix_to_len,   suffix bytes
//     score: varint zigzag(round(score·2^q))  when quantized,
//            8 little-endian bytes            otherwise

constexpr std::uint64_t kFlagFrontCoding = 1;

std::uint64_t zigzag(std::int64_t v) noexcept {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

std::int64_t unzigzag(std::uint64_t v) noexcept {
  return static_cast<std::int64_t>(v >> 1) ^ -static_cast<std::int64_t>(v & 1);
}

std::size_t shared_prefix(std::string_view a, std::string_view b) noexcept {
  const std::size_t limit = std::min(a.size(), b.size());
  std::size_t i = 0;
  while (i < limit && a[i] == b[i]) ++i;
  return i;
}

void put_front_coded(std::vector<std::uint8_t>& out, std::string_view prev,
                     std::string_view cur, bool front_coding) {
  const std::size_t shared = front_coding ? shared_prefix(prev, cur) : 0;
  put_varint(out, shared);
  put_varint(out, cur.size() - shared);
  const auto* data = reinterpret_cast<const std::uint8_t*>(cur.data());
  out.insert(out.end(), data + shared, data + cur.size());
}

void put_double(std::vector<std::uint8_t>& out, double value) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(bits >> (8 * i)));
  }
}

}  // namespace

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

std::uint64_t WireReader::read_varint() {
  std::uint64_t value = 0;
  int shift = 0;
  while (true) {
    if (pos_ >= bytes_.size()) throw std::runtime_error("wire: truncated varint");
    const std::uint8_t byte = bytes_[pos_++];
    if (shift >= 64) throw std::runtime_error("wire: varint overflow");
    value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return value;
    shift += 7;
  }
}

std::string_view WireReader::read_bytes(std::size_t n) {
  if (pos_ + n > bytes_.size()) throw std::runtime_error("wire: truncated bytes");
  const auto* data = reinterpret_cast<const char*>(bytes_.data() + pos_);
  pos_ += n;
  return {data, n};
}

double WireReader::read_double() {
  if (pos_ + 8 > bytes_.size()) throw std::runtime_error("wire: truncated double");
  std::uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) {
    bits |= static_cast<std::uint64_t>(bytes_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  double value = 0.0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

std::vector<std::uint8_t> encode_records(std::span<const ScoreRecord> records,
                                         const WireOptions& opts) {
  if (opts.quantize_bits < 0 || opts.quantize_bits > 40) {
    throw std::invalid_argument("wire: quantize_bits out of [0, 40]");
  }
  // Front coding wants records sorted by (url_from, url_to).
  std::vector<std::uint32_t> order(records.size());
  std::iota(order.begin(), order.end(), 0);
  if (opts.front_coding) {
    std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
      if (records[a].url_from != records[b].url_from) {
        return records[a].url_from < records[b].url_from;
      }
      return records[a].url_to < records[b].url_to;
    });
  }

  std::vector<std::uint8_t> out;
  out.reserve(records.size() * 32 + 16);
  put_varint(out, opts.front_coding ? kFlagFrontCoding : 0);
  put_varint(out, static_cast<std::uint64_t>(opts.quantize_bits));
  put_varint(out, records.size());

  const double scale = std::ldexp(1.0, opts.quantize_bits);
  std::string_view prev_from;
  std::string_view prev_to;
  for (const std::uint32_t idx : order) {
    const ScoreRecord& r = records[idx];
    put_front_coded(out, prev_from, r.url_from, opts.front_coding);
    put_front_coded(out, prev_to, r.url_to, opts.front_coding);
    if (opts.quantize_bits > 0) {
      put_varint(out, zigzag(std::llround(r.score * scale)));
    } else {
      put_double(out, r.score);
    }
    prev_from = r.url_from;
    prev_to = r.url_to;
  }
  return out;
}

std::vector<OwnedScoreRecord> decode_records(std::span<const std::uint8_t> bytes) {
  WireReader reader(bytes);
  const std::uint64_t flags = reader.read_varint();
  const auto quantize_bits = static_cast<int>(reader.read_varint());
  if (quantize_bits < 0 || quantize_bits > 40) {
    throw std::runtime_error("wire: bad quantize_bits");
  }
  const std::uint64_t count = reader.read_varint();
  (void)flags;  // front coding is self-describing via the shared lengths

  const double inv_scale =
      quantize_bits > 0 ? std::ldexp(1.0, -quantize_bits) : 0.0;
  std::vector<OwnedScoreRecord> records;
  // Every record consumes at least 5 bytes, so a count beyond that is
  // malformed — reject it before reserving (hostile headers must not drive
  // allocation).
  if (count > bytes.size() / 5 + 1) {
    throw std::runtime_error("wire: record count exceeds payload");
  }
  records.reserve(count);
  std::string prev_from;
  std::string prev_to;
  for (std::uint64_t i = 0; i < count; ++i) {
    OwnedScoreRecord r;
    const std::uint64_t shared_from = reader.read_varint();
    const std::uint64_t suffix_from = reader.read_varint();
    if (shared_from > prev_from.size()) {
      throw std::runtime_error("wire: bad shared prefix");
    }
    r.url_from = prev_from.substr(0, shared_from);
    r.url_from += reader.read_bytes(suffix_from);

    const std::uint64_t shared_to = reader.read_varint();
    const std::uint64_t suffix_to = reader.read_varint();
    if (shared_to > prev_to.size()) {
      throw std::runtime_error("wire: bad shared prefix");
    }
    r.url_to = prev_to.substr(0, shared_to);
    r.url_to += reader.read_bytes(suffix_to);

    if (quantize_bits > 0) {
      r.score = static_cast<double>(unzigzag(reader.read_varint())) * inv_scale;
    } else {
      r.score = reader.read_double();
    }
    prev_from = r.url_from;
    prev_to = r.url_to;
    records.push_back(std::move(r));
  }
  return records;
}

}  // namespace p2prank::transport
