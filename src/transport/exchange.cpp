#include "transport/exchange.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/metric_names.hpp"
#include "obs/metrics.hpp"

namespace p2prank::transport {

using overlay::kInvalidNode;
using overlay::NodeIndex;

namespace {

/// Publish a finished round's totals under the exchange.* names. Additive,
/// so several rounds into one registry accumulate; pass one registry per
/// scheme when comparing direct vs indirect.
void export_report(obs::MetricsRegistry* m, const TransmissionReport& r) {
  if (m == nullptr) return;
  namespace names = obs::names;
  m->counter(names::kExchangeDataMessages) += r.data_messages;
  m->counter(names::kExchangeLookupMessages) += r.lookup_messages;
  m->counter(names::kExchangeRecordsDelivered) += r.records_delivered;
  m->counter(names::kExchangeRecordHops) += r.record_hops;
  m->counter(names::kExchangeRounds) += r.rounds;
  m->gauge(names::kExchangeDataBytes) += r.data_bytes;
  m->gauge(names::kExchangeLookupBytes) += r.lookup_bytes;
}

/// Per-data-message size histogram cell, or nullptr when metrics are off.
[[nodiscard]] util::Log2Histogram* message_bytes_hist(obs::MetricsRegistry* m) {
  return m == nullptr ? nullptr
                      : &m->log2_histogram(obs::names::kExchangeMessageBytes);
}

/// Snapshot an unordered accumulation map as a key-sorted vector. The
/// forwarding loops below sum floating-point byte counts while walking
/// these maps; iterating the hash table directly would make those sums
/// depend on bucket order (an order-nondeterminism hazard — p2plint rule
/// `no-unordered-iteration`), so every walk goes through this snapshot.
[[nodiscard]] std::vector<std::pair<NodeIndex, std::uint64_t>> sorted_entries(
    const std::unordered_map<NodeIndex, std::uint64_t>& m) {
  std::vector<std::pair<NodeIndex, std::uint64_t>> entries(m.begin(), m.end());
  std::sort(entries.begin(), entries.end());
  return entries;
}

}  // namespace

ExchangeDemand::ExchangeDemand(std::uint32_t num_rankers) : out_(num_rankers) {
  if (num_rankers == 0) throw std::invalid_argument("ExchangeDemand: zero rankers");
}

void ExchangeDemand::add(NodeIndex src, NodeIndex dst, std::uint64_t records) {
  if (src >= out_.size() || dst >= out_.size()) {
    throw std::out_of_range("ExchangeDemand: ranker index");
  }
  if (src == dst || records == 0) return;  // local scores never hit the wire
  out_[src].emplace_back(dst, records);
  total_ += records;
}

ExchangeDemand ExchangeDemand::all_pairs(std::uint32_t num_rankers,
                                         std::uint64_t records_per_pair) {
  ExchangeDemand d(num_rankers);
  for (NodeIndex s = 0; s < num_rankers; ++s) {
    for (NodeIndex t = 0; t < num_rankers; ++t) {
      if (s != t) d.add(s, t, records_per_pair);
    }
  }
  return d;
}

TransmissionReport run_direct_exchange(const overlay::Overlay& o,
                                       const ExchangeDemand& demand,
                                       const WireFormat& wire, bool cache_lookups,
                                       obs::MetricsRegistry* metrics) {
  if (o.num_nodes() < demand.num_rankers()) {
    throw std::invalid_argument("direct exchange: overlay smaller than ranker set");
  }
  util::Log2Histogram* msg_hist = message_bytes_hist(metrics);
  TransmissionReport report;
  report.rounds = 1;
  std::vector<double> node_out_bytes(demand.num_rankers(), 0.0);

  for (NodeIndex src = 0; src < demand.num_rankers(); ++src) {
    // Sum in canonical (dst, records) order, not add() order: the report
    // must be a function of the logical demand, and FP addition does not
    // commute across reorderings.
    auto outgoing = demand.from(src);
    std::sort(outgoing.begin(), outgoing.end());
    for (const auto& [dst, records] : outgoing) {
      if (!cache_lookups) {
        // Lookup: route a small query along the overlay to dst's id; every
        // hop is one message. (The response travels point-to-point once the
        // querier learns the address; we count the request hops, matching
        // the paper's h·r·N² accounting.)
        const auto path = o.route(src, o.id_of(dst));
        report.lookup_messages += path.size();
        report.lookup_bytes += static_cast<double>(path.size()) * wire.lookup_bytes;
        node_out_bytes[src] += wire.lookup_bytes;  // first hop leaves src
      }
      // One point-to-point data message.
      const double bytes =
          wire.header_bytes + static_cast<double>(records) * wire.record_bytes;
      report.data_messages += 1;
      report.data_bytes += bytes;
      node_out_bytes[src] += bytes;
      report.records_delivered += records;
      report.record_hops += records;  // one network transfer each
      if (msg_hist != nullptr) msg_hist->add(static_cast<std::uint64_t>(bytes));
    }
  }
  report.max_node_out_bytes =
      *std::max_element(node_out_bytes.begin(), node_out_bytes.end());
  export_report(metrics, report);
  return report;
}

TransmissionReport run_indirect_exchange(const overlay::Overlay& o,
                                         const ExchangeDemand& demand,
                                         const WireFormat& wire,
                                         obs::MetricsRegistry* metrics) {
  const std::uint32_t n = demand.num_rankers();
  if (o.num_nodes() < n) {
    throw std::invalid_argument("indirect exchange: overlay smaller than ranker set");
  }
  util::Log2Histogram* msg_hist = message_bytes_hist(metrics);
  // Routed packages may pass through overlay nodes that host no ranker, so
  // the forwarding state spans the whole overlay.
  const auto overlay_n = static_cast<std::uint32_t>(o.num_nodes());
  TransmissionReport report;
  std::vector<double> node_out_bytes(overlay_n, 0.0);

  // pending[node]: records held at `node` still bound for dest -> count.
  std::vector<std::unordered_map<NodeIndex, std::uint64_t>> pending(overlay_n);
  for (NodeIndex src = 0; src < n; ++src) {
    for (const auto& [dst, records] : demand.from(src)) {
      pending[src][dst] += records;
    }
  }

  // Precompute each destination ranker's overlay key once.
  std::vector<overlay::NodeId> dest_key(n);
  for (NodeIndex d = 0; d < n; ++d) dest_key[d] = o.id_of(d);

  // Synchronized forwarding rounds: every holding node groups its records
  // by next hop and emits one package per distinct next hop (this is the
  // pack/recombine of the paper's Fig. 4). Records arriving at their
  // destination are delivered.
  std::vector<std::unordered_map<NodeIndex, std::uint64_t>> incoming(overlay_n);
  // package contents per (holder -> next hop): next hop -> records.
  std::unordered_map<NodeIndex, std::uint64_t> package;
  bool any = demand.total_records() > 0;
  while (any) {
    ++report.rounds;
    any = false;
    for (NodeIndex node = 0; node < overlay_n; ++node) {
      auto& held = pending[node];
      if (held.empty()) continue;
      package.clear();
      for (const auto& [dst, records] : sorted_entries(held)) {
        const NodeIndex hop = o.next_hop(node, dest_key[dst]);
        // next_hop == invalid would mean the records already sit at their
        // destination; those were delivered on arrival below.
        assert(hop != kInvalidNode);
        package[hop] += records;
        incoming[hop][dst] += records;
        report.record_hops += records;
      }
      held.clear();
      for (const auto& [hop, records] : sorted_entries(package)) {
        (void)hop;
        const double bytes =
            wire.header_bytes + static_cast<double>(records) * wire.record_bytes;
        report.data_messages += 1;
        report.data_bytes += bytes;
        node_out_bytes[node] += bytes;
        if (msg_hist != nullptr) msg_hist->add(static_cast<std::uint64_t>(bytes));
      }
    }
    for (NodeIndex node = 0; node < overlay_n; ++node) {
      auto& in = incoming[node];
      if (in.empty()) continue;
      // Deliver records that reached their destination; keep the rest.
      if (const auto it = in.find(node); it != in.end()) {
        report.records_delivered += it->second;
        in.erase(it);
      }
      if (!in.empty()) {
        any = true;
        auto& held = pending[node];
        for (const auto& [dst, records] : sorted_entries(in)) held[dst] += records;
      }
      in.clear();
    }
  }

  report.max_node_out_bytes =
      node_out_bytes.empty()
          ? 0.0
          : *std::max_element(node_out_bytes.begin(), node_out_bytes.end());
  export_report(metrics, report);
  return report;
}

}  // namespace p2prank::transport
