#include "transport/fault_plane.hpp"

#include <algorithm>

namespace p2prank::transport {

void FaultPlane::set_partition(std::uint64_t side_a_mask, double deliver_ab,
                               double deliver_ba) noexcept {
  active_ = true;
  side_a_mask_ = side_a_mask;
  deliver_ab_ = std::clamp(deliver_ab, 0.0, 1.0);
  deliver_ba_ = std::clamp(deliver_ba, 0.0, 1.0);
}

void FaultPlane::set_corruption(double probability) noexcept {
  corrupt_probability_ = std::clamp(probability, 0.0, 1.0);
}

bool FaultPlane::deliver(std::uint32_t src, std::uint32_t dst) noexcept {
  if (!active_) return true;
  const bool src_a = side_a(src);
  if (src_a == side_a(dst)) return true;  // same side: cut irrelevant
  const double p = src_a ? deliver_ab_ : deliver_ba_;
  // One draw per crossing send, even at p=0/p=1, so a scenario's stream
  // does not shift when only the cut's probabilities differ.
  const bool pass = rng_.chance(p);
  if (!pass) ++partition_drops_;
  return pass;
}

bool FaultPlane::link_up(std::uint32_t src, std::uint32_t dst) const noexcept {
  if (!active_) return true;
  const bool src_a = side_a(src);
  if (src_a == side_a(dst)) return true;
  return (src_a ? deliver_ab_ : deliver_ba_) > 0.0;
}

bool FaultPlane::maybe_corrupt(std::vector<std::uint8_t>& frame) noexcept {
  if (corrupt_probability_ <= 0.0 || frame.empty()) return false;
  if (!rng_.chance(corrupt_probability_)) return false;
  const std::uint32_t flips = 1 + static_cast<std::uint32_t>(rng_.below(4));
  // Flip distinct positions only: a repeated position with the same XOR
  // mask would cancel itself and hand the codec a byte-identical frame —
  // which then decodes fine and trips the corrupt-applied invariant as a
  // phantom checksum collision (seen ~once per several thousand corrupted
  // frames in long fuzz sweeps). A duplicate draw is skipped, not redrawn,
  // so the flip count stays bounded and the RNG stream stays simple.
  std::size_t taken[4];
  std::uint32_t num_taken = 0;
  for (std::uint32_t i = 0; i < flips; ++i) {
    const std::size_t pos = rng_.below(frame.size());
    bool dup = false;
    for (std::uint32_t j = 0; j < num_taken; ++j) dup |= taken[j] == pos;
    if (dup) continue;
    taken[num_taken++] = pos;
    // XOR with a nonzero byte so every flip really changes its byte.
    frame[pos] ^= static_cast<std::uint8_t>(1 + rng_.below(255));
  }
  ++frames_corrupted_;
  return true;
}

}  // namespace p2prank::transport
