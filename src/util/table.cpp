#include "util/table.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace p2prank::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table: headers required");
}

Table& Table::row() {
  rows_.emplace_back();
  rows_.back().reserve(headers_.size());
  return *this;
}

Table& Table::cell(std::string value) {
  if (rows_.empty()) row();
  if (rows_.back().size() >= headers_.size()) {
    throw std::logic_error("Table: too many cells in row");
  }
  rows_.back().push_back(std::move(value));
  return *this;
}

Table& Table::cell(std::string_view value) { return cell(std::string(value)); }
Table& Table::cell(const char* value) { return cell(std::string(value)); }

Table& Table::cell(double value, int precision) {
  return cell(format_double(value, precision));
}

Table& Table::cell(std::uint64_t value) { return cell(std::to_string(value)); }
Table& Table::cell(std::int64_t value) { return cell(std::to_string(value)); }
Table& Table::cell(int value) { return cell(std::to_string(value)); }

void Table::print(std::ostream& out, std::string_view title) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      widths[c] = std::max(widths[c], r[c].size());
    }
  }
  std::size_t total = 0;
  for (const auto w : widths) total += w + 3;

  if (!title.empty()) out << "== " << title << " ==\n";
  auto rule = [&] { out << std::string(total, '-') << '\n'; };
  rule();
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << std::left << std::setw(static_cast<int>(widths[c]) + 3) << headers_[c];
  }
  out << '\n';
  rule();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      out << std::left << std::setw(static_cast<int>(widths[c]) + 3) << r[c];
    }
    out << '\n';
  }
  rule();
}

void Table::print_csv(std::ostream& out) const {
  auto escape = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string escaped = "\"";
    for (const char c : s) {
      if (c == '"') escaped += "\"\"";
      else escaped += c;
    }
    escaped += '"';
    return escaped;
  };
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) out << ',';
    out << escape(headers_[c]);
  }
  out << '\n';
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      if (c) out << ',';
      out << escape(r[c]);
    }
    out << '\n';
  }
}

std::string format_double(double value, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  return out.str();
}

std::string format_bytes(double bytes) {
  static constexpr const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB", "PiB"};
  int unit = 0;
  while (std::fabs(bytes) >= 1024.0 && unit < 5) {
    bytes /= 1024.0;
    ++unit;
  }
  std::ostringstream out;
  out << std::fixed << std::setprecision(unit == 0 ? 0 : 2) << bytes << ' '
      << kUnits[unit];
  return out.str();
}

std::string format_seconds(double seconds) {
  std::ostringstream out;
  out << std::fixed;
  if (seconds >= 3600.0) {
    out << std::setprecision(2) << seconds / 3600.0 << " h";
  } else if (seconds >= 1.0) {
    out << std::setprecision(1) << seconds << " s";
  } else {
    out << std::setprecision(1) << seconds * 1e3 << " ms";
  }
  return out.str();
}

}  // namespace p2prank::util
