// Fixed-width and log2-bucketed histograms for degree distributions,
// hop counts and message-size profiles.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace p2prank::util {

/// Integer histogram with power-of-two buckets: bucket i counts values in
/// [2^i, 2^{i+1}) (bucket 0 also holds value 0). Suited to heavy-tailed
/// web-graph degree distributions.
class Log2Histogram {
 public:
  void add(std::uint64_t value) noexcept;

  [[nodiscard]] std::size_t bucket_count() const noexcept { return buckets_.size(); }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const noexcept;
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

  /// Lower bound of bucket i (0 for bucket 0, else 2^{i-1}... see add()).
  [[nodiscard]] static std::uint64_t bucket_floor(std::size_t i) noexcept;

  /// Multi-line ASCII rendering (one row per non-empty bucket).
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::uint64_t> buckets_;
  std::uint64_t total_ = 0;
};

/// Fixed-width histogram over [lo, hi) with `bins` equal bins; out-of-range
/// values clamp into the first/last bin.
class LinearHistogram {
 public:
  LinearHistogram(double lo, double hi, std::size_t bins);

  void add(double value) noexcept;

  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t count(std::size_t bin) const noexcept;
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] double bin_lo(std::size_t bin) const noexcept;
  [[nodiscard]] double bin_hi(std::size_t bin) const noexcept;

 private:
  double lo_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace p2prank::util
