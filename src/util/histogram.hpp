// Fixed-width and log2-bucketed histograms for degree distributions,
// hop counts and message-size profiles.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace p2prank::util {

/// Integer histogram with power-of-two buckets. Bucket 0 counts values in
/// [0, 1]; bucket i >= 1 counts values in [2^i, 2^{i+1}). Equivalently,
/// a value v > 1 lands in bucket floor(log2(v)) = bit_width(v) - 1, so
/// UINT64_MAX lands in bucket 63. Suited to heavy-tailed web-graph degree
/// distributions. (`add`, `bucket_floor`, and `to_string` all follow this
/// one convention; tests/util_histogram_table_test.cpp pins the edges.)
class Log2Histogram {
 public:
  void add(std::uint64_t value) noexcept;

  [[nodiscard]] std::size_t bucket_count() const noexcept { return buckets_.size(); }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const noexcept;
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

  /// Lower bound of bucket i: 0 for bucket 0, else 2^i (i <= 63).
  [[nodiscard]] static std::uint64_t bucket_floor(std::size_t i) noexcept;
  /// Upper bound (inclusive) of bucket i: 1 for bucket 0, else 2^{i+1}-1
  /// (saturating to UINT64_MAX for bucket 63).
  [[nodiscard]] static std::uint64_t bucket_ceil(std::size_t i) noexcept;

  /// Multi-line ASCII rendering (one row per non-empty bucket).
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::uint64_t> buckets_;
  std::uint64_t total_ = 0;
};

/// Fixed-width histogram over [lo, hi) with `bins` equal bins. Finite
/// out-of-range values (including +/-infinity) clamp into the first/last
/// bin; NaN is never binned — it is tallied separately in `nan_count()`
/// (casting NaN to an integer bin index would be undefined behaviour).
/// Construction requires hi > lo and bins > 0.
class LinearHistogram {
 public:
  LinearHistogram(double lo, double hi, std::size_t bins);

  void add(double value) noexcept;

  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t count(std::size_t bin) const noexcept;
  /// Binned samples only; NaN samples are excluded (see nan_count()).
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  /// Number of NaN samples passed to add().
  [[nodiscard]] std::uint64_t nan_count() const noexcept { return nan_count_; }
  [[nodiscard]] double lo() const noexcept { return lo_; }
  [[nodiscard]] double bin_lo(std::size_t bin) const noexcept;
  [[nodiscard]] double bin_hi(std::size_t bin) const noexcept;

 private:
  double lo_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t nan_count_ = 0;
};

}  // namespace p2prank::util
