#include "util/histogram.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <sstream>
#include <stdexcept>

namespace p2prank::util {

void Log2Histogram::add(std::uint64_t value) noexcept {
  // Bucket index: 0 for value 0, else floor(log2(value)) + 1, so bucket i>0
  // covers [2^{i-1}, 2^i).
  const std::size_t idx = value == 0 ? 0 : static_cast<std::size_t>(std::bit_width(value));
  if (idx >= buckets_.size()) buckets_.resize(idx + 1, 0);
  ++buckets_[idx];
  ++total_;
}

std::uint64_t Log2Histogram::bucket(std::size_t i) const noexcept {
  return i < buckets_.size() ? buckets_[i] : 0;
}

std::uint64_t Log2Histogram::bucket_floor(std::size_t i) noexcept {
  return i == 0 ? 0 : (1ULL << (i - 1));
}

std::string Log2Histogram::to_string() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    const std::uint64_t lo = bucket_floor(i);
    const std::uint64_t hi = i == 0 ? 0 : (1ULL << i) - 1;
    out << '[' << lo << ", " << hi << "]: " << buckets_[i] << '\n';
  }
  return out.str();
}

LinearHistogram::LinearHistogram(double lo, double hi, std::size_t bins)
    : lo_(lo), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  if (bins == 0) throw std::invalid_argument("LinearHistogram: bins must be > 0");
  if (!(hi > lo)) throw std::invalid_argument("LinearHistogram: hi must exceed lo");
}

void LinearHistogram::add(double value) noexcept {
  auto bin = static_cast<std::ptrdiff_t>((value - lo_) / width_);
  bin = std::clamp<std::ptrdiff_t>(bin, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

std::uint64_t LinearHistogram::count(std::size_t bin) const noexcept {
  assert(bin < counts_.size());
  return counts_[bin];
}

double LinearHistogram::bin_lo(std::size_t bin) const noexcept {
  return lo_ + width_ * static_cast<double>(bin);
}

double LinearHistogram::bin_hi(std::size_t bin) const noexcept {
  return lo_ + width_ * static_cast<double>(bin + 1);
}

}  // namespace p2prank::util
