#include "util/histogram.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace p2prank::util {

void Log2Histogram::add(std::uint64_t value) noexcept {
  // Bucket index: 0 for values 0 and 1, else floor(log2(value)) =
  // bit_width(value) - 1, so bucket i>=1 covers [2^i, 2^{i+1}).
  const std::size_t idx =
      value <= 1 ? 0 : static_cast<std::size_t>(std::bit_width(value)) - 1;
  if (idx >= buckets_.size()) buckets_.resize(idx + 1, 0);
  ++buckets_[idx];
  ++total_;
}

std::uint64_t Log2Histogram::bucket(std::size_t i) const noexcept {
  return i < buckets_.size() ? buckets_[i] : 0;
}

std::uint64_t Log2Histogram::bucket_floor(std::size_t i) noexcept {
  return i == 0 ? 0 : (1ULL << i);
}

std::uint64_t Log2Histogram::bucket_ceil(std::size_t i) noexcept {
  if (i == 0) return 1;
  if (i >= 63) return std::numeric_limits<std::uint64_t>::max();
  return (1ULL << (i + 1)) - 1;
}

std::string Log2Histogram::to_string() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    out << '[' << bucket_floor(i) << ", " << bucket_ceil(i) << "]: " << buckets_[i]
        << '\n';
  }
  return out.str();
}

LinearHistogram::LinearHistogram(double lo, double hi, std::size_t bins)
    : lo_(lo), width_(0.0), counts_(bins, 0) {
  // Validate before deriving the bin width: dividing by bins == 0 would
  // trip the float-divide-by-zero sanitizer before the throw.
  if (bins == 0) throw std::invalid_argument("LinearHistogram: bins must be > 0");
  if (!(hi > lo)) throw std::invalid_argument("LinearHistogram: hi must exceed lo");
  width_ = (hi - lo) / static_cast<double>(bins);
}

void LinearHistogram::add(double value) noexcept {
  if (std::isnan(value)) {
    // NaN compares false with everything; clamping it into a bin would hide
    // upstream bugs, and casting it to an integer index is UB. Tally apart.
    ++nan_count_;
    return;
  }
  const double pos = (value - lo_) / width_;
  std::size_t bin = 0;
  if (pos >= static_cast<double>(counts_.size())) {
    bin = counts_.size() - 1;  // +inf and high outliers clamp into the last bin
  } else if (pos > 0.0) {
    bin = static_cast<std::size_t>(pos);
  }  // -inf and low outliers stay in bin 0
  ++counts_[bin];
  ++total_;
}

std::uint64_t LinearHistogram::count(std::size_t bin) const noexcept {
  assert(bin < counts_.size());
  return counts_[bin];
}

double LinearHistogram::bin_lo(std::size_t bin) const noexcept {
  return lo_ + width_ * static_cast<double>(bin);
}

double LinearHistogram::bin_hi(std::size_t bin) const noexcept {
  return lo_ + width_ * static_cast<double>(bin + 1);
}

}  // namespace p2prank::util
