#include "util/thread_pool.hpp"

#include <algorithm>

namespace p2prank::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this](const std::stop_token& stop) { worker_loop(stop); });
  }
}

ThreadPool::~ThreadPool() {
  for (auto& w : workers_) w.request_stop();
  wake_cv_.notify_all();
  // std::jthread joins on destruction.
}

void ThreadPool::worker_loop(const std::stop_token& stop) {
  std::uint64_t seen = 0;
  for (;;) {
    {
      MutexLock lock(wake_mutex_);
      wake_cv_.wait(lock.native(), stop, [this, seen] { return epoch_ != seen; });
      if (epoch_ == seen) return;  // stop requested, no further job
      seen = epoch_;
    }
    run_grains(/*worker=*/true);
    // Depart the epoch; the last worker out releases the waiting caller.
    if (departed_.fetch_add(1, std::memory_order_acq_rel) + 1 == workers_.size()) {
      MutexLock lock(done_mutex_);
      done_cv_.notify_one();
    }
  }
}

void ThreadPool::run_grains(bool worker) noexcept {
  std::uint64_t claimed = 0;
  for (;;) {
    const std::size_t slot = next_grain_.fetch_add(1, std::memory_order_relaxed);
    if (slot >= job_num_grains_) break;
    ++claimed;
    // Frontier dispatch claims list positions; the grain id (and hence the
    // index range) comes from the list, keeping geometry pool-independent.
    const std::size_t g = job_list_ ? job_list_[slot] : slot;
    const std::size_t begin = g * job_grain_;
    const std::size_t end = std::min(job_n_, begin + job_grain_);
    try {
      job_fn_(job_ctx_, g, begin, end);
    } catch (...) {
      MutexLock lock(error_mutex_);
      if (!job_error_) job_error_ = std::current_exception();
    }
  }
  // One amortized add per join, not per grain, and only for workers: the
  // caller's claims are whatever the workers did not take.
  if (worker && claimed != 0) {
    worker_claims_.fetch_add(claimed, std::memory_order_relaxed);
  }
}

void ThreadPool::dispatch(std::size_t n, std::size_t grain, GrainFn fn, void* ctx,
                          const std::uint32_t* list, std::size_t list_len) {
  // One fork-join in flight at a time; concurrent callers serialize here.
  MutexLock dispatch_lock(dispatch_mutex_);

  job_fn_ = fn;
  job_ctx_ = ctx;
  job_n_ = n;
  job_grain_ = grain;
  job_num_grains_ = list ? list_len : num_grains(n, grain);
  job_list_ = list;
  {
    MutexLock error_lock(error_mutex_);
    job_error_ = nullptr;
  }
  next_grain_.store(0, std::memory_order_relaxed);
  departed_.store(0, std::memory_order_relaxed);
  dispatches_.fetch_add(1, std::memory_order_relaxed);

  {
    // The epoch bump publishes the descriptor: workers read it only after
    // observing the new epoch under the same mutex.
    MutexLock lock(wake_mutex_);
    ++epoch_;
  }
  wake_cv_.notify_all();

  run_grains(/*worker=*/false);  // the caller is a full participant

  {
    // Wait until every worker has joined and departed this epoch; after
    // that no thread can still touch the descriptor, so the next dispatch
    // (or the caller's stack unwinding) is safe.
    MutexLock lock(done_mutex_);
    done_cv_.wait(lock.native(), [this] {
      return departed_.load(std::memory_order_acquire) == workers_.size();
    });
  }

  std::exception_ptr error;
  {
    MutexLock error_lock(error_mutex_);
    error = job_error_;
    job_error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

ThreadPool::Stats ThreadPool::stats() const noexcept {
  Stats s;
  s.parallel_for_calls = parallel_for_calls_.load(std::memory_order_relaxed);
  s.grained_calls = grained_calls_.load(std::memory_order_relaxed);
  s.indices = indices_.load(std::memory_order_relaxed);
  s.fixed_grains = fixed_grains_.load(std::memory_order_relaxed);
  s.dispatches = dispatches_.load(std::memory_order_relaxed);
  s.worker_claims = worker_claims_.load(std::memory_order_relaxed);
  return s;
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

}  // namespace p2prank::util
