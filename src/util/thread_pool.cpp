#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <utility>

namespace p2prank::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this](const std::stop_token& stop) { worker_loop(stop); });
  }
}

ThreadPool::~ThreadPool() {
  for (auto& w : workers_) w.request_stop();
  cv_.notify_all();
  // std::jthread joins on destruction.
}

void ThreadPool::worker_loop(const std::stop_token& stop) {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, stop, [this] { return !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop requested and queue drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t chunks = std::min(n, workers_.size());
  if (chunks <= 1) {
    fn(0, n);
    return;
  }

  struct State {
    std::atomic<std::size_t> remaining;
    std::mutex done_mutex;
    std::condition_variable done_cv;
    std::exception_ptr error;
    std::mutex error_mutex;
  };
  State state;
  state.remaining.store(chunks, std::memory_order_relaxed);

  const std::size_t base = n / chunks;
  const std::size_t extra = n % chunks;
  std::size_t begin = 0;
  {
    std::lock_guard lock(mutex_);
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t len = base + (c < extra ? 1 : 0);
      const std::size_t end = begin + len;
      tasks_.push([&state, &fn, begin, end] {
        try {
          fn(begin, end);
        } catch (...) {
          std::lock_guard elock(state.error_mutex);
          if (!state.error) state.error = std::current_exception();
        }
        if (state.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          std::lock_guard dlock(state.done_mutex);
          state.done_cv.notify_one();
        }
      });
      begin = end;
    }
  }
  cv_.notify_all();

  std::unique_lock done_lock(state.done_mutex);
  state.done_cv.wait(done_lock, [&state] {
    return state.remaining.load(std::memory_order_acquire) == 0;
  });
  if (state.error) std::rethrow_exception(state.error);
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

}  // namespace p2prank::util
