// Clang thread-safety annotations + annotated synchronization primitives.
//
// The repo's correctness story (bitwise-deterministic fork-join sweeps,
// runtime theorem checking, replayable chaos traces) rests on two locking
// disciplines that used to be enforced only by convention:
//
//  1. Real concurrency lives in exactly one place — the ThreadPool fork-join
//     handshake. Its mutex/condvar-protected members carry P2P_GUARDED_BY
//     so `clang -Wthread-safety -Werror` (the `static` CMake preset with a
//     clang toolchain; see tools/static_check.sh) rejects off-lock access at
//     compile time.
//
//  2. Everything else — the engine, the reliable exchange, the chaos
//     harness — is *thread-confined*: it runs on the single simulation
//     thread and hands work to the pool only through parallel_for's
//     disjoint-range contract. Members whose mutation from a pool worker
//     would be a data race are marked P2P_EXTERNALLY_SYNCHRONIZED, which
//     compiles to nothing but documents the confinement and gives
//     tools/p2plint an anchor.
//
// The macros follow the structure of the official clang thread-safety
// documentation (and of abseil's thread_annotations.h): they expand to the
// corresponding `__attribute__` under a compiler that implements it and to
// nothing elsewhere, so GCC builds are unaffected.
//
// libstdc++'s std::mutex is not declared as a capability, so annotating raw
// std::mutex members does nothing. Use util::Mutex / util::MutexLock below
// instead; tools/p2plint (rule `mutex-annotations`) rejects raw std::mutex
// or std::condition_variable members anywhere else in src/.
#pragma once

#include <condition_variable>
#include <mutex>

#if defined(__clang__) && (!defined(SWIG))
#define P2P_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define P2P_THREAD_ANNOTATION(x)  // no-op under GCC/MSVC
#endif

/// Declares a class to be a lockable capability ("mutex", "role", ...).
#define P2P_CAPABILITY(x) P2P_THREAD_ANNOTATION(capability(x))

/// RAII classes that acquire in the constructor and release in the
/// destructor.
#define P2P_SCOPED_CAPABILITY P2P_THREAD_ANNOTATION(scoped_lockable)

/// Data member may only be read/written while holding the given capability.
#define P2P_GUARDED_BY(x) P2P_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member: the pointed-to data is protected by the capability.
#define P2P_PT_GUARDED_BY(x) P2P_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the capability to be held on entry (and keeps it).
#define P2P_REQUIRES(...) \
  P2P_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the capability and holds it past return.
#define P2P_ACQUIRE(...) \
  P2P_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the capability.
#define P2P_RELEASE(...) \
  P2P_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns `ret`.
#define P2P_TRY_ACQUIRE(ret, ...) \
  P2P_THREAD_ANNOTATION(try_acquire_capability(ret, __VA_ARGS__))

/// Caller must NOT hold the capability (deadlock guard).
#define P2P_EXCLUDES(...) P2P_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Lock-ordering declarations.
#define P2P_ACQUIRED_BEFORE(...) \
  P2P_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define P2P_ACQUIRED_AFTER(...) \
  P2P_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Function returns a reference to the given capability.
#define P2P_RETURN_CAPABILITY(x) P2P_THREAD_ANNOTATION(lock_returned(x))

/// Opt a function out of the analysis. Reserved for code that is correct
/// for protocol reasons the static analysis cannot see (e.g. publication
/// via the pool's epoch handshake); every use carries a comment saying
/// which protocol stands in for the lock.
#define P2P_NO_THREAD_SAFETY_ANALYSIS \
  P2P_THREAD_ANNOTATION(no_thread_safety_analysis)

/// Documentation-only: the member is mutated without a lock because the
/// owning object is confined to the simulation thread (DESIGN.md §9). The
/// marker compiles to nothing; it exists so confinement is declared at the
/// member that depends on it instead of in a comment three files away.
#define P2P_EXTERNALLY_SYNCHRONIZED

namespace p2prank::util {

/// std::mutex wrapped as a clang capability so P2P_GUARDED_BY(member) is
/// enforceable. Satisfies Lockable, so std::unique_lock<Mutex> and
/// std::condition_variable_any interoperate.
class P2P_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() P2P_ACQUIRE() { m_.lock(); }
  void unlock() P2P_RELEASE() { m_.unlock(); }
  bool try_lock() P2P_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  std::mutex m_;  // p2plint: allow(mutex-annotations): the one wrapped mutex
};

/// Condition variable usable with util::Mutex (any Lockable). Waits take a
/// std::unique_lock<Mutex>, typically via MutexLock::native().
using CondVar = std::condition_variable_any;

/// RAII lock over util::Mutex, visible to the thread-safety analysis.
/// `native()` exposes the underlying unique_lock for condition-variable
/// waits; the capability is considered held across a wait (the analysis
/// does not model the unlock inside wait(), which is the standard
/// treatment — the predicate runs with the lock held either way).
class P2P_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& m) P2P_ACQUIRE(m) : lock_(m) {}
  ~MutexLock() P2P_RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  [[nodiscard]] std::unique_lock<Mutex>& native() noexcept { return lock_; }

 private:
  std::unique_lock<Mutex> lock_;
};

}  // namespace p2prank::util
