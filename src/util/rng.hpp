// Deterministic pseudo-random number generation for simulations and tests.
//
// All stochastic behaviour in p2prank flows through these generators so that
// every experiment is reproducible from a single 64-bit seed. We provide
// SplitMix64 (for seeding / hashing-style mixing) and Xoshiro256** (the main
// workhorse), plus small distribution helpers that avoid the libstdc++
// distribution objects whose sequences are not portable across platforms.
#pragma once

#include <array>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <limits>

namespace p2prank::util {

/// SplitMix64: tiny, fast generator. Primarily used to expand one 64-bit
/// seed into the larger state of Xoshiro256**, and as a portable mixer.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next 64 uniformly distributed bits.
  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// One-shot stateless mix of a 64-bit value (SplitMix64 finalizer).
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Xoshiro256**: fast, high-quality general-purpose generator.
/// Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x2545f4914f6cdd1dULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next(); }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    assert(lo <= hi);
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). Uses Lemire's multiply-shift rejection-free
  /// variant (bias is negligible for n << 2^64, which always holds here).
  std::uint64_t below(std::uint64_t n) noexcept {
    assert(n > 0);
    const unsigned __int128 m =
        static_cast<unsigned __int128>(next()) * static_cast<unsigned __int128>(n);
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t between(std::uint64_t lo, std::uint64_t hi) noexcept {
    assert(lo <= hi);
    return lo + below(hi - lo + 1);
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) noexcept { return uniform() < p; }

  /// Exponentially distributed value with the given mean (mean <= 0 -> 0).
  double exponential(double mean) noexcept {
    if (mean <= 0.0) return 0.0;
    double u = uniform();
    // uniform() can return exactly 0; clamp away from it for log().
    if (u <= 0.0) u = 0x1.0p-53;
    return -mean * std::log(u);
  }

  /// Discrete power-law sample in [1, max_value]: P(x) ~ x^-exponent.
  /// Sampled by inverting the continuous CDF and rounding down; good enough
  /// for generating heavy-tailed web-site sizes and degrees.
  std::uint64_t power_law(double exponent, std::uint64_t max_value) noexcept {
    assert(exponent > 1.0);
    assert(max_value >= 1);
    const double one_minus = 1.0 - exponent;
    const double max_term = std::pow(static_cast<double>(max_value) + 1.0, one_minus);
    const double u = uniform();
    const double x = std::pow(u * (max_term - 1.0) + 1.0, 1.0 / one_minus);
    auto v = static_cast<std::uint64_t>(x);
    if (v < 1) v = 1;
    if (v > max_value) v = max_value;
    return v;
  }

  /// Fork a statistically independent generator (for per-node streams).
  [[nodiscard]] Rng fork() noexcept { return Rng(next() ^ 0x8e9c5f3b1a2d4c6eULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace p2prank::util
