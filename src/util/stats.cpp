#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace p2prank::util {

void OnlineStats::add(double x) noexcept {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double OnlineStats::variance() const noexcept {
  return count_ ? m2_ / static_cast<double>(count_) : 0.0;
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

void OnlineStats::merge(const OnlineStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double quantile(std::span<const double> samples, double q) {
  if (samples.empty()) return 0.0;
  assert(q >= 0.0 && q <= 1.0);
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  // Linear interpolation between closest ranks (type-7 quantile).
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double accurate_sum(std::span<const double> values) noexcept {
  long double acc = 0.0L;
  for (const double v : values) acc += v;
  return static_cast<double>(acc);
}

double l1_norm(std::span<const double> v) noexcept {
  long double acc = 0.0L;
  for (const double x : v) acc += std::fabs(x);
  return static_cast<double>(acc);
}

double l1_distance(std::span<const double> a, std::span<const double> b) noexcept {
  assert(a.size() == b.size());
  long double acc = 0.0L;
  for (std::size_t i = 0; i < a.size(); ++i) acc += std::fabs(a[i] - b[i]);
  return static_cast<double>(acc);
}

double relative_error(std::span<const double> a, std::span<const double> b) noexcept {
  const double denom = l1_norm(b);
  const double num = l1_distance(a, b);
  if (denom == 0.0) return num == 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
  return num / denom;
}

}  // namespace p2prank::util
