// A small fixed-size thread pool with a parallel_for primitive.
//
// PageRank kernels (rank/spmv) are embarrassingly row-parallel; the pool
// gives them deterministic *results* (each index range writes disjoint
// outputs) while using all cores. The pool is created once and shared — the
// Core Guidelines discourage spawning threads per call (CP.24: joining
// threads, here via std::jthread RAII).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace p2prank::util {

class ThreadPool {
 public:
  /// Create a pool with `threads` workers; 0 means hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Run fn(begin, end) over [0, n) split into roughly equal contiguous
  /// chunks, one per worker; blocks until all chunks complete. `fn` must be
  /// safe to call concurrently on disjoint ranges. Exceptions thrown by fn
  /// propagate (the first one captured) after all chunks finish.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& fn);

  /// Process-wide shared pool (lazily constructed, sized to the machine).
  [[nodiscard]] static ThreadPool& shared();

 private:
  void worker_loop(const std::stop_token& stop);

  std::mutex mutex_;
  std::condition_variable_any cv_;
  std::queue<std::function<void()>> tasks_;
  std::vector<std::jthread> workers_;
};

}  // namespace p2prank::util
