// A fixed-size thread pool with a low-overhead fork-join parallel_for.
//
// PageRank kernels (rank/spmv) are embarrassingly row-parallel; the pool
// gives them deterministic *results* (each index range writes disjoint
// outputs) while using all cores. The pool is created once and shared — the
// Core Guidelines discourage spawning threads per call (CP.24: joining
// threads, here via std::jthread RAII).
//
// Dispatch is a broadcast fork-join, not a task queue: one job descriptor
// lives in the pool, workers are woken by an epoch bump and claim fixed-size
// grains off an atomic counter, and the caller participates in the work.
// No per-call heap allocation (the callable is passed by reference through a
// function pointer + context, never wrapped in std::function) and no mutex
// convoy on the hot path — the only locking is the wake/done handshake.
//
// Determinism contract: grain boundaries depend only on (n, grain), never on
// the worker count or claim order, so a kernel that does fixed per-grain
// arithmetic and combines per-grain partials in grain order produces
// bitwise-identical results across runs and pool sizes.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <span>
#include <thread>
#include <vector>

#include "util/thread_annotations.hpp"

namespace p2prank::util {

class ThreadPool {
 public:
  /// Create a pool with `threads` workers; 0 means hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Fork-join tallies, split by determinism (DESIGN.md §11). The first
  /// family is a pure function of the work submitted — identical across
  /// pool sizes — because grained decompositions depend only on (n, grain)
  /// and the inline path walks the same grains as a dispatch. The second
  /// family is not: plain parallel_for chunking and the inline-vs-dispatch
  /// decision depend on the pool size, and grain claims race benignly
  /// between workers and the caller.
  struct Stats {
    // Deterministic across pool sizes.
    std::uint64_t parallel_for_calls = 0;
    std::uint64_t grained_calls = 0;
    std::uint64_t indices = 0;       ///< total n over all calls
    std::uint64_t fixed_grains = 0;  ///< sum of num_grains(n, grain), grained calls
    // Pool-size-dependent (obs exports these as unstable counters).
    std::uint64_t dispatches = 0;     ///< fork-joins that actually woke workers
    std::uint64_t worker_claims = 0;  ///< grains executed by workers (not caller)

    /// Per-interval tallies: stats() counts from pool construction, so a
    /// run measured on a shared pool subtracts its start-of-run snapshot.
    friend Stats operator-(Stats a, const Stats& b) noexcept {
      a.parallel_for_calls -= b.parallel_for_calls;
      a.grained_calls -= b.grained_calls;
      a.indices -= b.indices;
      a.fixed_grains -= b.fixed_grains;
      a.dispatches -= b.dispatches;
      a.worker_claims -= b.worker_claims;
      return a;
    }
  };
  [[nodiscard]] Stats stats() const noexcept;

  /// Below this many indices a dispatch is not worth the fork-join wakeup:
  /// the body runs inline on the caller. Keeps micro-sweeps (1-page groups,
  /// tiny partitions) from paying broadcast + barrier cost per call.
  static constexpr std::size_t kInlineCutoff = 2048;

  /// Number of grains a grained dispatch splits [0, n) into.
  [[nodiscard]] static constexpr std::size_t num_grains(std::size_t n,
                                                        std::size_t grain) noexcept {
    return grain == 0 ? 0 : (n + grain - 1) / grain;
  }

  /// Run fn(begin, end) over [0, n) split into contiguous chunks; blocks
  /// until all chunks complete. `fn` must be safe to call concurrently on
  /// disjoint ranges. Exceptions thrown by fn propagate (the first one
  /// captured) after all chunks finish. Chunking depends on the pool size;
  /// use parallel_for_grains when the decomposition itself must be fixed.
  template <typename F>
  void parallel_for(std::size_t n, const F& fn) {
    if (n == 0) return;
    parallel_for_calls_.fetch_add(1, std::memory_order_relaxed);
    indices_.fetch_add(n, std::memory_order_relaxed);
    if (n < kInlineCutoff || workers_.size() <= 1) {
      fn(std::size_t{0}, n);
      return;
    }
    dispatch(n, plain_grain(n), &invoke_range<F>,
             const_cast<void*>(static_cast<const void*>(&fn)));
  }

  /// Run fn(grain_index, begin, end) over [0, n) split into fixed-size
  /// grains of `grain` indices (the last may be short). Grain boundaries
  /// depend only on (n, grain) — never on the pool — so per-grain partial
  /// results combined in grain order are bitwise-deterministic across pool
  /// sizes. Grains are claimed dynamically; blocks until all complete.
  template <typename F>
  void parallel_for_grains(std::size_t n, std::size_t grain, const F& fn) {
    if (n == 0) return;
    if (grain == 0) grain = 1;
    const std::size_t total = num_grains(n, grain);
    grained_calls_.fetch_add(1, std::memory_order_relaxed);
    indices_.fetch_add(n, std::memory_order_relaxed);
    fixed_grains_.fetch_add(total, std::memory_order_relaxed);
    if (n < kInlineCutoff || workers_.size() <= 1 || total <= 1) {
      // Inline path still walks the exact grain decomposition so fused
      // kernels see identical per-grain partials with or without dispatch.
      for (std::size_t g = 0; g < total; ++g) {
        const std::size_t begin = g * grain;
        fn(g, begin, std::min(n, begin + grain));
      }
      return;
    }
    dispatch(n, grain, &invoke_grain<F>,
             const_cast<void*>(static_cast<const void*>(&fn)));
  }

  /// Frontier-aware variant of parallel_for_grains: run fn(grain_index,
  /// begin, end) for exactly the grain ids listed in `grains`, which must be
  /// sorted ascending, duplicate-free, and drawn from the same (n, grain)
  /// decomposition as parallel_for_grains. Grain geometry is unchanged —
  /// only the subset executes — so per-grain partials indexed by grain id
  /// keep the grain-order combine determinism while skipped grains cost
  /// nothing. Workers claim *list positions* off the atomic counter; the
  /// inline path walks the list in order.
  template <typename F>
  void parallel_for_grains_subset(std::span<const std::uint32_t> grains,
                                  std::size_t n, std::size_t grain,
                                  const F& fn) {
    if (grains.empty() || n == 0) return;
    if (grain == 0) grain = 1;
    grained_calls_.fetch_add(1, std::memory_order_relaxed);
    // Indices actually covered: every listed grain is full-size except a
    // possible final short grain of the decomposition.
    std::size_t covered = grains.size() * grain;
    if (grains.back() == num_grains(n, grain) - 1) {
      covered -= num_grains(n, grain) * grain - n;
    }
    indices_.fetch_add(covered, std::memory_order_relaxed);
    fixed_grains_.fetch_add(grains.size(), std::memory_order_relaxed);
    if (covered < kInlineCutoff || workers_.size() <= 1 || grains.size() <= 1) {
      for (const std::uint32_t g : grains) {
        const std::size_t begin = std::size_t{g} * grain;
        fn(std::size_t{g}, begin, std::min(n, begin + grain));
      }
      return;
    }
    dispatch(n, grain, &invoke_grain<F>,
             const_cast<void*>(static_cast<const void*>(&fn)), grains.data(),
             grains.size());
  }

  /// Process-wide shared pool (lazily constructed, sized to the machine).
  [[nodiscard]] static ThreadPool& shared();

 private:
  /// Type-erased grain body: (context, grain_index, begin, end).
  using GrainFn = void (*)(void*, std::size_t, std::size_t, std::size_t);

  template <typename F>
  static void invoke_range(void* ctx, std::size_t /*grain*/, std::size_t begin,
                           std::size_t end) {
    (*static_cast<const F*>(ctx))(begin, end);
  }
  template <typename F>
  static void invoke_grain(void* ctx, std::size_t grain, std::size_t begin,
                           std::size_t end) {
    (*static_cast<const F*>(ctx))(grain, begin, end);
  }

  /// Grain size for the plain (chunked) API: a few grains per executor so
  /// uneven chunks still balance, without descending into tiny grains.
  [[nodiscard]] std::size_t plain_grain(std::size_t n) const noexcept {
    const std::size_t executors = workers_.size() + 1;  // workers + caller
    const std::size_t target = 4 * executors;
    return std::max<std::size_t>(1, (n + target - 1) / target);
  }

  /// `list`/`list_len` select a sorted subset of grain ids to execute
  /// (frontier dispatch); nullptr means every grain of the decomposition.
  void dispatch(std::size_t n, std::size_t grain, GrainFn fn, void* ctx,
                const std::uint32_t* list = nullptr, std::size_t list_len = 0)
      P2P_EXCLUDES(dispatch_mutex_, wake_mutex_, done_mutex_);
  /// Claim and execute grains of the current job until none remain. Reads
  /// the job descriptor without dispatch_mutex_: publication happens via
  /// the epoch bump under wake_mutex_ (workers) or program order (the
  /// dispatching caller), a protocol the static analysis cannot see.
  void run_grains(bool worker) noexcept P2P_NO_THREAD_SAFETY_ANALYSIS;
  /// Exempt from analysis for the condition-variable wait: the predicate
  /// lambda reads epoch_ with wake_mutex_ held by wait(), but the analysis
  /// does not track capabilities into lambda bodies.
  void worker_loop(const std::stop_token& stop) P2P_NO_THREAD_SAFETY_ANALYSIS;

  // --- Fork-join state (one job at a time; dispatch_mutex_ serializes). ---
  Mutex dispatch_mutex_;
  // Job descriptor; written by dispatch() before the epoch bump, read by
  // workers after they observe the new epoch (wake_mutex_ orders both) —
  // see run_grains() for why reads are outside the capability.
  GrainFn job_fn_ P2P_GUARDED_BY(dispatch_mutex_) = nullptr;
  void* job_ctx_ P2P_GUARDED_BY(dispatch_mutex_) = nullptr;
  std::size_t job_n_ P2P_GUARDED_BY(dispatch_mutex_) = 0;
  std::size_t job_grain_ P2P_GUARDED_BY(dispatch_mutex_) = 0;
  std::size_t job_num_grains_ P2P_GUARDED_BY(dispatch_mutex_) = 0;
  // Optional frontier list: when set, the claim counter indexes into this
  // array of grain ids instead of the dense [0, job_num_grains_) range.
  const std::uint32_t* job_list_ P2P_GUARDED_BY(dispatch_mutex_) = nullptr;
  std::atomic<std::size_t> next_grain_{0};  // atomic: claimed lock-free
  std::atomic<std::size_t> departed_{0};    // atomic: done-handshake count

  // Fork-join tallies (see Stats). Atomic so a pool shared across caller
  // threads stays race-free; all increments/reads are relaxed — these are
  // statistics, not synchronization.
  std::atomic<std::uint64_t> parallel_for_calls_{0};
  std::atomic<std::uint64_t> grained_calls_{0};
  std::atomic<std::uint64_t> indices_{0};
  std::atomic<std::uint64_t> fixed_grains_{0};
  std::atomic<std::uint64_t> dispatches_{0};
  std::atomic<std::uint64_t> worker_claims_{0};

  Mutex error_mutex_;
  std::exception_ptr job_error_ P2P_GUARDED_BY(error_mutex_);

  // Wake handshake: epoch_ counts jobs; every worker joins each epoch
  // exactly once (dispatch_mutex_ prevents a worker missing one).
  Mutex wake_mutex_;
  CondVar wake_cv_;
  std::uint64_t epoch_ P2P_GUARDED_BY(wake_mutex_) = 0;

  // Done handshake: the caller waits for all workers to depart the epoch,
  // so no worker can still touch the job descriptor after dispatch returns.
  Mutex done_mutex_;
  CondVar done_cv_;

  std::vector<std::jthread> workers_;
};

}  // namespace p2prank::util
