// Stable, portable hashing used for page/site partitioning and node ids.
//
// Partitioning correctness (Section 4.1 of the paper) depends on the hash of
// a URL/site being identical across processes and runs, so std::hash (which
// is implementation-defined) is not usable; we pin FNV-1a 64 plus a strong
// finalizer.
#pragma once

#include <cstdint>
#include <string_view>

namespace p2prank::util {

inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x00000100000001b3ULL;

/// FNV-1a over a byte string. Stable across platforms and runs.
[[nodiscard]] constexpr std::uint64_t fnv1a(std::string_view bytes,
                                            std::uint64_t seed = kFnvOffset) noexcept {
  std::uint64_t h = seed;
  for (const char c : bytes) {
    h ^= static_cast<std::uint8_t>(c);
    h *= kFnvPrime;
  }
  return h;
}

/// FNV-1a followed by an avalanche finalizer; use when low bits must be
/// well-mixed (e.g. `hash % k` bucket selection).
[[nodiscard]] std::uint64_t stable_hash(std::string_view bytes) noexcept;

/// Combine two hashes (order-dependent).
[[nodiscard]] constexpr std::uint64_t hash_combine(std::uint64_t a,
                                                   std::uint64_t b) noexcept {
  // boost::hash_combine-style with 64-bit golden-ratio constant.
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4));
}

}  // namespace p2prank::util
