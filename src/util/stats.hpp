// Small statistics helpers used by experiment harnesses and tests:
// streaming mean/variance (Welford), min/max tracking, and exact quantiles
// over retained samples.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace p2prank::util {

/// Streaming mean / variance / extrema (Welford's algorithm). O(1) memory.
class OnlineStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return count_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;  ///< population variance
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

  /// Merge another accumulator into this one (parallel reduction).
  void merge(const OnlineStats& other) noexcept;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Exact quantile of a sample set; q in [0,1]. Copies + sorts (fine for the
/// per-experiment sample counts we use). Empty input returns 0.
[[nodiscard]] double quantile(std::span<const double> samples, double q);

/// Sum in long double for better accuracy, returned as double.
[[nodiscard]] double accurate_sum(std::span<const double> values) noexcept;

/// L1 norm of a vector.
[[nodiscard]] double l1_norm(std::span<const double> v) noexcept;

/// L1 norm of (a - b). Requires a.size() == b.size().
[[nodiscard]] double l1_distance(std::span<const double> a,
                                 std::span<const double> b) noexcept;

/// Relative error ||a - b||_1 / ||b||_1 (the paper's Fig. 6 metric, with b
/// the centralized reference). Returns 0 when both are zero vectors.
[[nodiscard]] double relative_error(std::span<const double> a,
                                    std::span<const double> b) noexcept;

}  // namespace p2prank::util
