// Console table and CSV emission for the benchmark harnesses.
//
// Every figure/table reproduction prints both a human-readable aligned table
// (so `for b in build/bench/*; do $b; done` output is scannable) and,
// optionally, machine-readable CSV for plotting.
#pragma once

#include <initializer_list>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace p2prank::util {

/// Column-aligned text table with a title row. Cells are strings; numeric
/// helpers format with fixed precision.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Begin a new row; subsequent add_* calls fill it left to right.
  Table& row();
  Table& cell(std::string value);
  Table& cell(std::string_view value);
  Table& cell(const char* value);
  Table& cell(double value, int precision = 4);
  Table& cell(std::uint64_t value);
  Table& cell(std::int64_t value);
  Table& cell(int value);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

  /// Render aligned text (with separators) to the stream.
  void print(std::ostream& out, std::string_view title = {}) const;

  /// Render as CSV (headers + rows).
  void print_csv(std::ostream& out) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision (no trailing-zero trimming).
[[nodiscard]] std::string format_double(double value, int precision);

/// Format a byte count with binary units ("1.5 MiB").
[[nodiscard]] std::string format_bytes(double bytes);

/// Format seconds in a friendly unit ("2.1 h", "7500 s", "35 ms").
[[nodiscard]] std::string format_seconds(double seconds);

}  // namespace p2prank::util
