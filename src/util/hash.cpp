#include "util/hash.hpp"

#include "util/rng.hpp"

namespace p2prank::util {

std::uint64_t stable_hash(std::string_view bytes) noexcept {
  return mix64(fnv1a(bytes));
}

}  // namespace p2prank::util
