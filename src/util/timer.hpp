// Wall-clock stopwatch for harness instrumentation only — simulation logic
// must never read real time (determinism).
#pragma once

#include <chrono>

namespace p2prank::util {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() noexcept { start_ = Clock::now(); }

  [[nodiscard]] double elapsed_seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double elapsed_ms() const noexcept { return elapsed_seconds() * 1e3; }

 private:
  // p2plint: allow(no-wallclock-rng): harness instrumentation is the one
  // sanctioned wall-clock reader; simulation logic uses virtual time only.
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace p2prank::util
