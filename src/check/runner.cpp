#include "check/runner.hpp"

#include <algorithm>
#include <memory>
#include <span>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "engine/checkpoint.hpp"
#include "engine/distributed.hpp"
#include "engine/reference.hpp"
#include "graph/graph_updates.hpp"
#include "graph/synthetic_web.hpp"
#include "obs/metric_names.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "partition/partitioner.hpp"
#include "recover/supervisor.hpp"
#include "serve/snapshot.hpp"
#include "util/rng.hpp"

namespace p2prank::check {

namespace {

std::unique_ptr<partition::Partitioner> make_partitioner(const Scenario& s) {
  switch (s.partition) {
    case PartitionKind::kHashUrl: return partition::make_hash_url_partitioner();
    case PartitionKind::kHashSite: return partition::make_hash_site_partitioner();
    case PartitionKind::kRandom:
      return partition::make_random_partitioner(util::mix64(s.graph_seed));
  }
  throw std::invalid_argument("ScenarioRunner: bad partition kind");
}

std::uint32_t largest_group(std::span<const std::uint32_t> assignment,
                            std::uint32_t k) {
  std::vector<std::uint32_t> sizes(k, 0);
  for (const std::uint32_t g : assignment) ++sizes[g];
  return static_cast<std::uint32_t>(
      std::max_element(sizes.begin(), sizes.end()) - sizes.begin());
}

/// A small random crawl churn: add links, remove existing links, add
/// external links. Deterministic from `seed`; removals are deduplicated so
/// the batch never removes the same link instance twice.
std::vector<graph::LinkUpdate> random_updates(const graph::WebGraph& g,
                                              std::uint64_t seed) {
  util::Rng rng(util::mix64(seed ^ 0x6b79a1d30c52f8e7ULL));
  const auto n = static_cast<std::uint64_t>(g.num_pages());
  std::vector<graph::LinkUpdate> updates;
  std::vector<std::pair<graph::PageId, graph::PageId>> removed;
  const std::size_t count = 1 + rng.below(8);
  for (std::size_t i = 0; i < count; ++i) {
    const double roll = rng.uniform();
    if (roll < 0.5) {
      const auto u = static_cast<graph::PageId>(rng.below(n));
      const auto v = static_cast<graph::PageId>(rng.below(n));
      updates.push_back(graph::LinkUpdate::add_link(g.url(u), g.url(v)));
    } else if (roll < 0.85) {
      for (int attempt = 0; attempt < 8; ++attempt) {
        const auto u = static_cast<graph::PageId>(rng.below(n));
        const auto links = g.out_links(u);
        if (links.empty()) continue;
        const graph::PageId v = links[rng.below(links.size())];
        if (std::find(removed.begin(), removed.end(), std::pair{u, v}) !=
            removed.end()) {
          continue;
        }
        removed.emplace_back(u, v);
        updates.push_back(graph::LinkUpdate::remove_link(g.url(u), g.url(v)));
        break;
      }
    } else {
      const auto u = static_cast<graph::PageId>(rng.below(n));
      updates.push_back(graph::LinkUpdate::add_external(g.url(u)));
    }
  }
  if (updates.empty()) {
    updates.push_back(graph::LinkUpdate::add_external(g.url(0)));
  }
  return updates;
}

}  // namespace

std::string ScenarioResult::summary() const {
  std::ostringstream out;
  if (ok()) {
    out << "ok";
  } else {
    out << "FAIL " << violations.front().invariant << " @t="
        << violations.front().time << " (" << violations.front().detail << ')';
  }
  out << "  err=" << final_error << " t_end=" << end_time << " samples="
      << samples_checked << " msgs=" << messages_sent << " lost="
      << messages_lost;
  if (retransmissions != 0 || duplicates_rejected != 0) {
    out << " rexmit=" << retransmissions << " dups=" << duplicates_rejected;
  }
  if (churn_events != 0) out << " churn=" << churn_events;
  if (partition_drops != 0) out << " cut_drops=" << partition_drops;
  if (frames_quarantined != 0) out << " quarantined=" << frames_quarantined;
  if (evictions != 0 || rejoins != 0) {
    out << " evict=" << evictions << " rejoin=" << rejoins;
  }
  return out.str();
}

ScenarioRunner::ScenarioRunner(util::ThreadPool& pool, RunnerOptions opts)
    : pool_(pool), opts_(std::move(opts)) {}

ScenarioResult ScenarioRunner::run(const Scenario& s) {
  if (s.k == 0 || s.pages == 0) {
    throw std::invalid_argument("ScenarioRunner: k and pages must be > 0");
  }
  if (s.t2 < s.t1 || s.t1 < 0.0) {
    throw std::invalid_argument("ScenarioRunner: bad wait interval");
  }
  if (!(s.delivery_p >= 0.0 && s.delivery_p <= 1.0) ||
      !(s.warm_start_scale >= 0.0 && s.warm_start_scale <= 1.0)) {
    throw std::invalid_argument("ScenarioRunner: probability/scale out of range");
  }

  auto cfg = graph::google2002_config(s.pages, s.graph_seed);
  // Scale the site count down with the crawl so site-granularity partitions
  // keep several sites per group at chaos-harness sizes.
  cfg.num_sites = std::clamp<std::uint32_t>(s.pages / 25, 8, 100);
  graph::WebGraph g = graph::generate_synthetic_web(cfg);

  const auto partitioner = make_partitioner(s);
  std::vector<std::uint32_t> assignment = partitioner->partition(g, s.k);
  std::vector<double> reference =
      engine::open_system_reference(g, opts_.alpha, pool_);

  engine::EngineOptions eo;
  eo.algorithm = s.algorithm;
  eo.alpha = opts_.alpha;
  eo.delivery_probability = s.delivery_p;
  eo.t1 = s.t1;
  eo.t2 = s.t2;
  eo.delivery_latency = s.delivery_latency;
  eo.latency_jitter = s.latency_jitter;
  // `reliable` turns on the full layer: retransmission implies the epoch
  // duplicate filter and the suspicion-based failure detector. Recovery
  // scenarios imply it: the supervisor's quorum reads the failure detector.
  eo.reliability.retransmit = s.reliable || s.recovery;
  // Exact-mode worklist sweeps: bitwise-identical ranks, so every invariant
  // below applies verbatim whether this is on or off.
  eo.worklist = s.worklist;
  eo.stability_epsilon = s.stability_epsilon;
  eo.seed = s.engine_seed;
  // Observability pass-through: pure observation, so every code path below
  // is identical with or without sinks attached (DESIGN.md §11).
  eo.metrics = opts_.metrics;
  eo.tracer = opts_.tracer;
  if (opts_.break_skip_refresh) {
    eo.fault_skip_refresh_group = largest_group(assignment, s.k);
  }
  // Serving pass-through (DESIGN.md §12): like metrics/tracer, attaching a
  // sink is pure observation — every invariant below applies unchanged with
  // the flag on. The store outlives the engine (including kGraphUpdate
  // rebuilds, which reuse `eo` and hence the same sink), so snapshot epochs
  // must stay monotone across the whole scenario.
  serve::SnapshotStore serve_store(/*top_k_capacity=*/8);
  if (s.serve) eo.snapshot_sink = &serve_store;

  // Reordering without the epoch filter is a *designed* monotonicity hazard:
  // a delayed stale Y replaces a newer X entry and the affected ranks dip.
  // from_seed never generates that combination; for hand-written traces the
  // monotone theorem's premise (in-order refresh) is simply absent, so the
  // check starts dis-armed. With `reliable` on, epochs restore the premise
  // (accepted epochs only increase, so applied Y values only grow) and the
  // theorem stays armed under any jitter.
  bool jitter_hazard = false;
  if (!s.reliable && !s.recovery) {
    jitter_hazard = s.latency_jitter > 0.0;
    for (const ScheduleOp& op : s.ops) {
      if (op.kind == OpKind::kSetJitter && op.value > 0.0) jitter_hazard = true;
    }
  }

  auto sim = std::make_unique<engine::DistributedRanking>(g, assignment, s.k,
                                                          eo, pool_);
  sim->set_reference(reference);
  if (s.warm_start_scale > 0.0) {
    std::vector<double> warm(reference);
    for (double& r : warm) r *= s.warm_start_scale;
    sim->warm_start(warm);
  }
  // Construct after the warm start so the monotone baseline is the actual
  // starting vector.
  auto checker = std::make_unique<InvariantChecker>(
      *sim, reference, /*check_monotone=*/!jitter_hazard, /*check_bound=*/true,
      /*expect_status_per_step=*/eo.stability_epsilon > 0.0);

  // Recovery mode (DESIGN.md §13): attach the eviction/rejoin supervisor.
  // It is ticked at every sample and its ownership ledger is cross-checked
  // against the engine below — a handoff that loses or duplicates a page on
  // either side is caught within one sample interval.
  recover::SupervisorOptions so;
  so.break_rejoin_ledger = opts_.break_supervisor_ledger;
  so.metrics = opts_.metrics;
  so.tracer = opts_.tracer;
  if (s.serve) so.serve_store = &serve_store;
  auto supervisor =
      s.recovery ? std::make_unique<recover::RecoverySupervisor>(*sim, so)
                 : nullptr;

  ScenarioResult result;
  double offset = 0.0;  // global time = offset + sim->now() (graph rebuilds
                        // start a fresh engine clock)
  std::uint64_t* obs_ops_applied = nullptr;
  std::uint64_t* obs_samples = nullptr;
  if (opts_.metrics != nullptr) {
    obs_ops_applied = &opts_.metrics->counter(obs::names::kCheckOpsApplied);
    obs_samples = &opts_.metrics->counter(obs::names::kCheckSamples);
  }
  std::string checkpoint;
  // Thm 4.1 bookkeeping: the state is "consistent" (a sub-solution of the
  // current graph's operator, so ranks grow monotonically) until a crash;
  // a checkpoint remembers whether it was saved in a consistent phase, and
  // restoring such a checkpoint makes the state consistent again. A graph
  // update voids both for good (carried ranks can exceed the new R*).
  bool state_consistent = true;
  bool checkpoint_consistent = false;

  // Serving-contract probes, sampled alongside the theorem checks: a
  // snapshot exists from t = 0 on, its shard epochs agree (the torn-read
  // tripwire), epochs never run backwards — not even across a kGraphUpdate
  // engine rebuild — and the merged top-K matches a brute-force sort of the
  // snapshot's own ranks.
  std::uint64_t serve_last_epoch = 0;
  const auto serve_probe = [&] {
    if (!s.serve || result.violations.size() >= opts_.max_violations) return;
    const double t = offset + sim->now();
    const std::shared_ptr<const serve::RankSnapshot> snap = serve_store.acquire();
    if (snap == nullptr) {
      result.violations.push_back({"serve-available", t, "no snapshot published"});
      return;
    }
    if (!snap->epoch_consistent()) {
      result.violations.push_back(
          {"serve-epoch", t, "mixed shard epochs (torn snapshot)"});
    }
    if (snap->epoch() < serve_last_epoch) {
      std::ostringstream detail;
      detail << "epoch " << snap->epoch() << " after " << serve_last_epoch;
      result.violations.push_back({"serve-epoch-monotonic", t, detail.str()});
    }
    serve_last_epoch = std::max(serve_last_epoch, snap->epoch());
    const std::size_t probe_k = std::min<std::size_t>(5, snap->num_pages());
    std::vector<serve::TopKEntry> brute;
    brute.reserve(snap->num_pages());
    for (std::uint32_t page = 0; page < snap->num_pages(); ++page) {
      brute.push_back({page, snap->rank(page)});
    }
    std::sort(brute.begin(), brute.end(), serve::ranks_before);
    brute.resize(probe_k);
    if (snap->top_k(probe_k) != brute) {
      result.violations.push_back(
          {"serve-topk", t,
           "merged top-K disagrees with brute force over the snapshot's ranks"});
    }
  };

  // Recovery-contract probes: the supervisor's ledger must equal the
  // engine's ownership map at every sample (no page lost or duplicated by a
  // handoff), and per-ranker recovery epochs — the fencing tokens — never
  // regress.
  std::vector<std::uint64_t> recover_epochs;
  const auto recovery_probe = [&] {
    if (supervisor == nullptr ||
        result.violations.size() >= opts_.max_violations) {
      return;
    }
    const double t = offset + sim->now();
    const auto live_assignment = sim->current_assignment();
    const auto ledger = supervisor->ledger();
    for (std::size_t p = 0; p < live_assignment.size(); ++p) {
      if (ledger[p] != live_assignment[p]) {
        std::ostringstream detail;
        detail << "page " << p << ": supervisor ledger says " << ledger[p]
               << ", engine says " << live_assignment[p];
        result.violations.push_back({"recover-ledger", t, detail.str()});
        break;
      }
    }
    if (recover_epochs.empty()) recover_epochs.assign(s.k, 0);
    for (std::uint32_t r = 0; r < s.k; ++r) {
      const std::uint64_t e = supervisor->recovery_epoch(r);
      if (e < recover_epochs[r]) {
        std::ostringstream detail;
        detail << "ranker " << r << " recovery epoch went backwards: "
               << recover_epochs[r] << " -> " << e;
        result.violations.push_back({"recover-epoch", t, detail.str()});
        break;
      }
      recover_epochs[r] = e;
    }
  };

  const auto advance_to = [&](double global_t) {
    while (offset + sim->now() + 1e-12 < global_t &&
           result.violations.size() < opts_.max_violations) {
      const double next =
          std::min(global_t, offset + sim->now() + opts_.sample_interval);
      const double interval = next - offset - sim->now();
      if (interval <= 0.0) break;  // fp guard: nothing left to simulate
      (void)sim->run(next - offset, interval);
      if (supervisor != nullptr) supervisor->tick(offset + sim->now());
      checker->check_sample(result.violations);
      serve_probe();
      recovery_probe();
      ++result.samples_checked;
      if (obs_samples != nullptr) ++*obs_samples;
      if (opts_.tracer != nullptr) {
        opts_.tracer->instant(obs::names::kTraceSample, offset + sim->now(), 0,
                              {}, static_cast<double>(result.violations.size()));
      }
    }
  };

  for (const ScheduleOp& op : s.ops) {
    if (result.violations.size() >= opts_.max_violations) break;
    advance_to(std::min(op.time, s.active_time));
    if (obs_ops_applied != nullptr) ++*obs_ops_applied;
    if (opts_.tracer != nullptr) {
      // Fault injections become trace instants on the target group's track,
      // so a trace shows *why* residuals moved, not just that they did.
      opts_.tracer->instant(obs::names::kTraceChaosOp, offset + sim->now(),
                            op.group, op_kind_name(op.kind), op.value);
    }
    switch (op.kind) {
      case OpKind::kCrash:
        if (op.group < s.k) {
          const bool nonempty = sim->group(op.group).size() > 0;
          sim->crash_group(op.group);
          if (nonempty) {  // crashing an empty group is a true no-op
            checker->on_crash(op.group);
            state_consistent = false;
          }
        }
        break;
      case OpKind::kPause:
        if (op.group < s.k) sim->pause_group(op.group);
        break;
      case OpKind::kResume:
        if (op.group < s.k) sim->resume_group(op.group);
        break;
      case OpKind::kSetLoss:
        sim->set_delivery_probability(std::clamp(op.value, 0.0, 1.0));
        break;
      case OpKind::kSetAckLoss:
        // Negative mirrors the *base* data-channel probability (the
        // engine's own convention for ack_delivery_probability).
        sim->set_ack_delivery_probability(
            op.value < 0.0 ? s.delivery_p : std::clamp(op.value, 0.0, 1.0));
        break;
      case OpKind::kSetJitter:
        sim->set_latency_jitter(std::max(op.value, 0.0));
        break;
      case OpKind::kLeave:
        // Generator aim can be stale (an earlier churn emptied the group):
        // invalid combinations are defined no-ops, like out-of-range crash
        // targets.
        if (op.group < s.k && op.group2 < s.k && op.group != op.group2 &&
            sim->group(op.group).size() > 0) {
          sim->leave_group(op.group, op.group2);
          // The handoff moves state exactly (full-precision checkpoint
          // round-trip + consistent X re-prime), so a monotone phase stays
          // monotone: no checker hook needed.
          if (supervisor != nullptr) supervisor->resync(offset + sim->now());
        }
        break;
      case OpKind::kJoin:
        if (op.group < s.k && op.group2 < s.k && op.group != op.group2 &&
            sim->group(op.group).size() == 0 &&
            sim->group(op.group2).size() >= 2) {
          sim->join_group(op.group, op.group2);
          if (supervisor != nullptr) supervisor->resync(offset + sim->now());
        }
        break;
      case OpKind::kPartition: {
        std::uint64_t mask = op.seed;
        if (mask == kCutBusiestGroup) {
          // Resolve the sentinel to the group owning the most pages right
          // now (lowest index ties) — the one cut guaranteed to sever live
          // traffic, so suspicion and the evict→rejoin arc must follow.
          std::uint32_t busiest = 0;
          for (std::uint32_t g2 = 1; g2 < s.k && g2 < 64; ++g2) {
            if (sim->group(g2).size() > sim->group(busiest).size()) {
              busiest = g2;
            }
          }
          mask = std::uint64_t{1} << busiest;
        }
        sim->set_partition(mask, std::clamp(op.value, 0.0, 1.0),
                           std::clamp(op.value2, 0.0, 1.0));
        break;
      }
      case OpKind::kHeal:
        sim->heal_partition();
        break;
      case OpKind::kCorrupt:
        sim->set_corruption(std::clamp(op.value, 0.0, 1.0));
        break;
      case OpKind::kSaveCheckpoint: {
        std::ostringstream out;
        engine::save_ranks(g, sim->global_ranks(), out);
        checkpoint = out.str();
        checkpoint_consistent = state_consistent;
        break;
      }
      case OpKind::kRestoreCheckpoint: {
        if (checkpoint.empty()) break;  // nothing saved yet: defined no-op
        std::istringstream in(checkpoint);
        // Full round-trip through the text format — the harness exercises
        // checkpoint serialization on every restore. A checkpoint from
        // before a graph update still loads: matching is by URL, new pages
        // start at 0.
        const auto loaded = engine::load_ranks(g, in);
        for (std::uint32_t grp = 0; grp < s.k; ++grp) sim->crash_group(grp);
        // A restore is a global rollback: slices sent from the rolled-back
        // timeline must not outlive it (they would inflate peers' X above
        // the restored state, and the first post-restore send would deflate
        // it — a rank dip that breaks monotone re-arming).
        sim->drop_in_flight();
        if (s.serve) {
          // The rollback instant: every published epoch reflects the
          // abandoned timeline and must read as stale — but still serve
          // (availability over freshness).
          const auto snap = serve_store.acquire();
          if (snap == nullptr || !serve_store.is_stale(*snap)) {
            result.violations.push_back(
                {"serve-invalidate", offset + sim->now(),
                 "snapshot not stale after restore rollback"});
          }
        }
        sim->warm_start(loaded.ranks);
        if (s.serve) {
          // The warm start republishes the restored state, superseding the
          // stale epochs immediately.
          const auto snap = serve_store.acquire();
          if (snap == nullptr || serve_store.is_stale(*snap)) {
            result.violations.push_back(
                {"serve-invalidate", offset + sim->now(),
                 "restore warm start did not republish a fresh snapshot"});
          }
        }
        checker->on_restore(loaded.ranks, checkpoint_consistent);
        state_consistent = checkpoint_consistent;
        break;
      }
      case OpKind::kGraphUpdate: {
        const auto ranks = sim->global_ranks();
        auto delta = graph::apply_updates_delta(g, random_updates(g, op.seed));
        auto new_assignment = partitioner->partition(delta.graph, s.k);
        // Incremental fast path (DESIGN.md §14): a link-only splice on an
        // exact-mode worklist scenario with unchanged ownership carries the
        // frontier across the swap instead of re-sweeping densely. Bitwise-
        // identical to the cold path, which --full-graph-rebuild forces.
        const bool incremental = !opts_.full_graph_rebuild && s.worklist &&
                                 delta.incremental &&
                                 new_assignment == assignment;
        engine::DistributedRanking::WorklistCarrySet carry;
        if (incremental) carry = sim->export_worklist_carry();
        // PageIds are preserved across a splice, so the rank vector carries
        // verbatim; only a page-adding rebuild needs carry_ranks' remap.
        std::vector<double> carried =
            delta.incremental ? std::vector<double>(ranks.begin(), ranks.end())
                              : engine::carry_ranks(g, ranks, delta.graph);
        offset += sim->now();
        checker.reset();  // references sim
        sim.reset();      // references g
        g = std::move(delta.graph);
        assignment = std::move(new_assignment);
        reference = engine::open_system_reference(g, opts_.alpha, pool_);
        if (opts_.break_skip_refresh) {
          eo.fault_skip_refresh_group = largest_group(assignment, s.k);
        }
        sim = std::make_unique<engine::DistributedRanking>(g, assignment, s.k,
                                                           eo, pool_);
        sim->set_reference(reference);
        if (incremental) {
          sim->warm_start_incremental(carried, std::move(carry),
                                      delta.in_changed, delta.degree_changed);
        } else {
          sim->warm_start(carried);
        }
        state_consistent = false;
        checkpoint_consistent = false;
        // The monotone/bound premises are gone (the paper's Section 4.3
        // caveat): carried ranks can exceed the new fixed point. Keep
        // finiteness + counters, and converge against the new reference.
        checker = std::make_unique<InvariantChecker>(
            *sim, reference, /*check_monotone=*/false, /*check_bound=*/false,
            /*expect_status_per_step=*/eo.stability_epsilon > 0.0);
        if (supervisor != nullptr) {
          // Fresh engine, fresh supervisor: the ledger re-roots on the new
          // assignment and all rankers start healthy (the ctor also clears
          // any shard-down marks left in the serve store). The eviction/
          // rejoin tallies roll up into the result before replacement.
          result.evictions += supervisor->evictions();
          result.rejoins += supervisor->rejoins();
          supervisor = std::make_unique<recover::RecoverySupervisor>(*sim, so);
          recover_epochs.clear();  // epochs re-root with the new supervisor
        }
        break;
      }
    }
  }
  advance_to(s.active_time);
  const double active_end = offset + sim->now();
  if (opts_.tracer != nullptr) {
    opts_.tracer->complete(obs::names::kTracePhase, 0.0, active_end, 0,
                           "active");
  }

  // Loss-free, fault-free tail: every theorem-abiding configuration must
  // now converge to the centralized ranks.
  if (result.violations.size() < opts_.max_violations) {
    sim->set_delivery_probability(1.0);
    sim->set_ack_delivery_probability(1.0);
    // Partitions and corruption are faults too: the tail heals the cut and
    // stops flipping bytes. An evicted ranker rejoins during the tail (the
    // supervisor keeps ticking and its probes now read clean), so recovery
    // scenarios must converge with full membership restored.
    sim->heal_partition();
    sim->set_corruption(0.0);
    // Jitter reverts to the scenario's base value: it is configuration, not
    // a fault — and with `reliable` off a mid-run reorder burst has already
    // dis-armed monotonicity, while convergence tolerates jitter either way
    // (as R settles, reordered slices carry identical values).
    sim->set_latency_jitter(s.latency_jitter);
    for (std::uint32_t grp = 0; grp < s.k; ++grp) {
      if (sim->is_paused(grp)) sim->resume_group(grp);
    }
    const double deadline = offset + sim->now() + opts_.tail_max_time;
    double err = sim->relative_error_now();
    while (err > opts_.tail_error_threshold &&
           offset + sim->now() + 1e-12 < deadline &&
           result.violations.size() < opts_.max_violations) {
      advance_to(std::min(deadline, offset + sim->now() + opts_.sample_interval));
      err = sim->relative_error_now();
    }
    result.converged = err <= opts_.tail_error_threshold;
    result.final_error = err;
    if (!result.converged && result.violations.size() < opts_.max_violations) {
      std::ostringstream detail;
      detail << "loss-free tail stuck at relative error " << err << " after "
             << opts_.tail_max_time << " extra time units";
      result.violations.push_back(
          {"convergence", offset + sim->now(), detail.str()});
    }
  } else {
    result.final_error = sim->relative_error_now();
  }

  result.end_time = offset + sim->now();
  if (opts_.tracer != nullptr && result.end_time > active_end) {
    opts_.tracer->complete(obs::names::kTracePhase, active_end,
                           result.end_time - active_end, 0, "tail");
  }
  result.messages_sent = sim->messages_sent();
  result.messages_lost = sim->messages_lost();
  result.retransmissions = sim->retransmissions();
  result.duplicates_rejected = sim->duplicates_rejected();
  result.churn_events = sim->churn_events();
  result.partition_drops = sim->partition_drops();
  result.frames_quarantined = sim->frames_quarantined();
  if (supervisor != nullptr) {
    result.evictions += supervisor->evictions();
    result.rejoins += supervisor->rejoins();
  }
  return result;
}

}  // namespace p2prank::check
