#include "check/scenario.hpp"

#include <algorithm>
#include <iterator>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/rng.hpp"

namespace p2prank::check {

std::string_view op_kind_name(OpKind kind) noexcept {
  switch (kind) {
    case OpKind::kCrash: return "crash";
    case OpKind::kPause: return "pause";
    case OpKind::kResume: return "resume";
    case OpKind::kSetLoss: return "set_loss";
    case OpKind::kSaveCheckpoint: return "save";
    case OpKind::kRestoreCheckpoint: return "restore";
    case OpKind::kGraphUpdate: return "graph_update";
    case OpKind::kLeave: return "leave";
    case OpKind::kJoin: return "join";
    case OpKind::kSetAckLoss: return "set_ack_loss";
    case OpKind::kSetJitter: return "set_jitter";
    case OpKind::kPartition: return "partition";
    case OpKind::kHeal: return "heal";
    case OpKind::kCorrupt: return "corrupt";
  }
  return "?";
}

namespace {

bool parse_op_kind(std::string_view name, OpKind& out) {
  for (const OpKind kind :
       {OpKind::kCrash, OpKind::kPause, OpKind::kResume, OpKind::kSetLoss,
        OpKind::kSaveCheckpoint, OpKind::kRestoreCheckpoint, OpKind::kGraphUpdate,
        OpKind::kLeave, OpKind::kJoin, OpKind::kSetAckLoss, OpKind::kSetJitter,
        OpKind::kPartition, OpKind::kHeal, OpKind::kCorrupt}) {
    if (name == op_kind_name(kind)) {
      out = kind;
      return true;
    }
  }
  return false;
}

std::string_view partition_name(PartitionKind p) noexcept {
  switch (p) {
    case PartitionKind::kHashUrl: return "hash_url";
    case PartitionKind::kHashSite: return "hash_site";
    case PartitionKind::kRandom: return "random";
  }
  return "?";
}

bool parse_partition(std::string_view name, PartitionKind& out) {
  for (const PartitionKind p :
       {PartitionKind::kHashUrl, PartitionKind::kHashSite, PartitionKind::kRandom}) {
    if (name == partition_name(p)) {
      out = p;
      return true;
    }
  }
  return false;
}

}  // namespace

Scenario Scenario::from_seed(std::uint64_t seed) {
  // Mixed so that consecutive seeds give unrelated scenarios.
  util::Rng rng(util::mix64(seed ^ 0xc8a5d5a7b0f3e14dULL));
  Scenario s;
  s.origin_seed = seed;

  // Workload: small crawls — the harness buys coverage with many seeds, not
  // big graphs. Sites scale with pages so site-granularity partitions stay
  // meaningful at this size.
  s.pages = 150 + static_cast<std::uint32_t>(rng.below(700));
  s.graph_seed = rng.next();
  s.k = 2 + static_cast<std::uint32_t>(rng.below(23));
  {
    const double roll = rng.uniform();
    s.partition = roll < 0.4   ? PartitionKind::kHashUrl
                  : roll < 0.8 ? PartitionKind::kHashSite
                               : PartitionKind::kRandom;
  }

  s.algorithm = rng.chance(0.5) ? engine::Algorithm::kDPR1
                                : engine::Algorithm::kDPR2;
  static constexpr double kLossLevels[] = {1.0, 0.95, 0.8, 0.6, 0.4};
  s.delivery_p = kLossLevels[rng.below(std::size(kLossLevels))];
  s.t1 = rng.uniform(0.0, 2.0);
  s.t2 = s.t1 + rng.uniform(0.5, 6.0);
  s.delivery_latency = rng.chance(0.3) ? rng.uniform(0.1, 1.0) : 0.0;
  s.stability_epsilon = rng.chance(0.25) ? 1e-10 : 0.0;
  s.warm_start_scale = rng.chance(0.25) ? rng.uniform(0.1, 0.9) : 0.0;
  s.engine_seed = rng.next();
  s.active_time = 30.0 + rng.uniform(0.0, 50.0);

  // Fault schedule. Times are drawn independently and sorted, so a restore
  // can land before any save (defined: it is then a no-op) — the runner and
  // minimizer never need ordering guarantees between op kinds.
  const std::size_t nops = rng.below(11);  // 0..10
  bool have_graph_update = false;
  std::vector<std::uint32_t> paused;  // generator-side guess, for aim only
  s.ops.reserve(nops);
  for (std::size_t i = 0; i < nops; ++i) {
    ScheduleOp op;
    op.time = rng.uniform(1.0, s.active_time);
    const double roll = rng.uniform();
    if (roll < 0.28) {
      op.kind = OpKind::kCrash;
      op.group = static_cast<std::uint32_t>(rng.below(s.k));
    } else if (roll < 0.52) {
      op.kind = OpKind::kPause;
      op.group = static_cast<std::uint32_t>(rng.below(s.k));
      paused.push_back(op.group);
    } else if (roll < 0.72) {
      op.kind = OpKind::kResume;
      if (!paused.empty()) {
        const std::size_t pick = rng.below(paused.size());
        op.group = paused[pick];
        paused.erase(paused.begin() + static_cast<std::ptrdiff_t>(pick));
      } else {
        op.group = static_cast<std::uint32_t>(rng.below(s.k));
      }
    } else if (roll < 0.84) {
      op.kind = OpKind::kSetLoss;
      // Either a burst into lossiness or back towards reliability.
      op.value = rng.chance(0.5) ? rng.uniform(0.2, 1.0) : s.delivery_p;
    } else if (roll < 0.91) {
      op.kind = OpKind::kSaveCheckpoint;
    } else if (roll < 0.97 || have_graph_update) {
      op.kind = OpKind::kRestoreCheckpoint;
    } else {
      op.kind = OpKind::kGraphUpdate;  // at most one: reference recompute is
      op.seed = rng.next();            // the expensive part of a scenario
      have_graph_update = true;
    }
    s.ops.push_back(op);
  }
  // --- Reliability extension (appended draws) -------------------------------
  // Every draw above is exactly the original generator's sequence, and the
  // extension runs on a sub-RNG seeded by one further draw — so for every
  // seed the base scenario fields are what they always were (the corpus
  // files depend on that), and the extension stays stable if it grows again.
  util::Rng ext(rng.next());
  s.reliable = ext.chance(0.5);
  // Jitter is only generated together with the reliable layer: without the
  // epoch filter, reordering breaks Thm 4.1 by design (the runner dis-arms
  // the monotone check for such hand-written traces).
  s.latency_jitter = (s.reliable && ext.chance(0.5)) ? ext.uniform(0.1, 1.5) : 0.0;
  const std::size_t extra = ext.below(4);  // 0..3 churn/reliability faults
  static constexpr double kAckLossLevels[] = {0.9, 0.7, 0.5, 0.3};
  for (std::size_t i = 0; i < extra; ++i) {
    ScheduleOp op;
    op.time = ext.uniform(1.0, s.active_time);
    double roll = ext.uniform();
    if (!s.reliable && roll >= 0.60) roll = ext.chance(0.5) ? 0.0 : 0.40;
    if (roll < 0.35) {
      op.kind = OpKind::kLeave;
      op.group = static_cast<std::uint32_t>(ext.below(s.k));
      op.group2 = static_cast<std::uint32_t>(
          (op.group + 1 + ext.below(s.k - 1)) % s.k);
    } else if (roll < 0.60) {
      op.kind = OpKind::kJoin;
      op.group = static_cast<std::uint32_t>(ext.below(s.k));
      op.group2 = static_cast<std::uint32_t>(
          (op.group + 1 + ext.below(s.k - 1)) % s.k);
    } else if (roll < 0.80) {
      op.kind = OpKind::kSetAckLoss;
      // Either an ack-loss burst or back to mirroring the data channel.
      op.value = ext.chance(0.5)
                     ? kAckLossLevels[ext.below(std::size(kAckLossLevels))]
                     : -1.0;
    } else {
      op.kind = OpKind::kSetJitter;
      // A reorder burst, or the burst's end (back to the base jitter).
      op.value = ext.chance(0.5) ? ext.uniform(0.2, 2.0) : s.latency_jitter;
    }
    s.ops.push_back(op);
  }

  // --- Partition/recovery extension (appended draws) ------------------------
  // Same append-only discipline as the reliability extension above: one
  // further draw seeds a sub-RNG, so every base + reliability field keeps
  // its historical value for every seed.
  util::Rng ext2(rng.next());
  s.recovery = ext2.chance(0.35);
  if (s.recovery) s.reliable = true;  // the supervisor reads the failure detector
  if (ext2.chance(0.5)) {
    // One partition episode: a node-set cut with (possibly asymmetric,
    // possibly hard) delivery probabilities, healed before the active
    // window ends. The runner's tail also heals, so a scenario minimized
    // down to a bare `partition` op is still well-defined.
    ScheduleOp cut;
    cut.kind = OpKind::kPartition;
    cut.time = ext2.uniform(1.0, s.active_time * 0.6);
    std::uint64_t mask = 0;
    for (std::uint32_t g = 0; g < s.k && g < 64; ++g) {
      if (ext2.chance(0.35)) mask |= std::uint64_t{1} << g;
    }
    // Side A must be a proper non-empty subset or the cut is vacuous.
    if (mask == 0) mask = std::uint64_t{1} << ext2.below(s.k);
    const std::uint64_t all = (std::uint64_t{1} << s.k) - 1;  // k <= 25
    if (mask == all) mask &= ~(std::uint64_t{1} << ext2.below(s.k));
    cut.seed = mask;
    cut.value = ext2.chance(0.5) ? 0.0 : ext2.uniform(0.05, 0.4);
    cut.value2 = ext2.chance(0.5) ? 0.0 : ext2.uniform(0.05, 0.4);
    s.ops.push_back(cut);
    ScheduleOp heal;
    heal.kind = OpKind::kHeal;
    heal.time = cut.time + ext2.uniform(3.0, (s.active_time - cut.time) * 0.8);
    s.ops.push_back(heal);
  }
  if (ext2.chance(0.4)) {
    ScheduleOp corrupt;
    corrupt.kind = OpKind::kCorrupt;
    corrupt.time = ext2.uniform(1.0, s.active_time * 0.7);
    corrupt.value = ext2.uniform(0.05, 0.5);
    s.ops.push_back(corrupt);
    if (ext2.chance(0.6)) {
      ScheduleOp off;  // end of the corruption burst
      off.kind = OpKind::kCorrupt;
      off.time = corrupt.time + ext2.uniform(2.0, 15.0);
      off.value = 0.0;
      s.ops.push_back(off);
    }
  }

  std::stable_sort(s.ops.begin(), s.ops.end(),
                   [](const ScheduleOp& a, const ScheduleOp& b) {
                     return a.time < b.time;
                   });
  return s;
}

void Scenario::serialize(std::ostream& out) const {
  out << "# p2prank scenario trace v1\n";
  out << "origin_seed " << origin_seed << '\n';
  out << "pages " << pages << '\n';
  out << "graph_seed " << graph_seed << '\n';
  out << "k " << k << '\n';
  out << "partition " << partition_name(partition) << '\n';
  out << "algorithm "
      << (algorithm == engine::Algorithm::kDPR1 ? "DPR1" : "DPR2") << '\n';
  const auto old_precision = out.precision(17);
  out << "delivery_p " << delivery_p << '\n';
  out << "t1 " << t1 << '\n';
  out << "t2 " << t2 << '\n';
  out << "delivery_latency " << delivery_latency << '\n';
  out << "latency_jitter " << latency_jitter << '\n';
  out << "reliable " << (reliable ? 1 : 0) << '\n';
  out << "worklist " << (worklist ? 1 : 0) << '\n';
  out << "serve " << (serve ? 1 : 0) << '\n';
  out << "recovery " << (recovery ? 1 : 0) << '\n';
  out << "stability_epsilon " << stability_epsilon << '\n';
  out << "warm_start_scale " << warm_start_scale << '\n';
  out << "engine_seed " << engine_seed << '\n';
  out << "active_time " << active_time << '\n';
  for (const ScheduleOp& op : ops) {
    out << "op " << op.time << ' ' << op_kind_name(op.kind);
    switch (op.kind) {
      case OpKind::kCrash:
      case OpKind::kPause:
      case OpKind::kResume: out << ' ' << op.group; break;
      case OpKind::kLeave:
      case OpKind::kJoin: out << ' ' << op.group << ' ' << op.group2; break;
      case OpKind::kSetLoss:
      case OpKind::kSetAckLoss:
      case OpKind::kSetJitter:
      case OpKind::kCorrupt: out << ' ' << op.value; break;
      case OpKind::kGraphUpdate: out << ' ' << op.seed; break;
      case OpKind::kPartition:
        out << ' ' << op.seed << ' ' << op.value << ' ' << op.value2;
        break;
      case OpKind::kSaveCheckpoint:
      case OpKind::kRestoreCheckpoint:
      case OpKind::kHeal: break;
    }
    out << '\n';
  }
  out.precision(old_precision);
}

std::string Scenario::to_text() const {
  std::ostringstream out;
  serialize(out);
  return out.str();
}

Scenario Scenario::parse(std::istream& in) {
  Scenario s;
  s.ops.clear();
  std::string line;
  std::size_t line_no = 0;
  const auto fail = [&](const std::string& what) {
    throw std::runtime_error("Scenario::parse: " + what + " on line " +
                             std::to_string(line_no));
  };
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    if (key == "op") {
      ScheduleOp op;
      std::string kind_name;
      if (!(fields >> op.time >> kind_name)) fail("malformed op");
      if (!parse_op_kind(kind_name, op.kind)) fail("unknown op kind '" + kind_name + "'");
      switch (op.kind) {
        case OpKind::kCrash:
        case OpKind::kPause:
        case OpKind::kResume:
          if (!(fields >> op.group)) fail("op missing group");
          break;
        case OpKind::kLeave:
        case OpKind::kJoin:
          if (!(fields >> op.group >> op.group2)) fail("op missing group pair");
          break;
        case OpKind::kSetLoss:
        case OpKind::kSetAckLoss:
        case OpKind::kSetJitter:
        case OpKind::kCorrupt:
          if (!(fields >> op.value)) fail("op missing value");
          break;
        case OpKind::kGraphUpdate:
          if (!(fields >> op.seed)) fail("op missing seed");
          break;
        case OpKind::kPartition:
          if (!(fields >> op.seed >> op.value >> op.value2)) {
            fail("op missing partition mask/probabilities");
          }
          break;
        case OpKind::kSaveCheckpoint:
        case OpKind::kRestoreCheckpoint:
        case OpKind::kHeal: break;
      }
      s.ops.push_back(op);
      continue;
    }
    std::string text_value;
    if (key == "partition") {
      if (!(fields >> text_value) || !parse_partition(text_value, s.partition)) {
        fail("bad partition");
      }
    } else if (key == "algorithm") {
      if (!(fields >> text_value)) fail("bad algorithm");
      if (text_value == "DPR1") {
        s.algorithm = engine::Algorithm::kDPR1;
      } else if (text_value == "DPR2") {
        s.algorithm = engine::Algorithm::kDPR2;
      } else {
        fail("unknown algorithm '" + text_value + "'");
      }
    } else if (key == "origin_seed") {
      if (!(fields >> s.origin_seed)) fail("bad origin_seed");
    } else if (key == "pages") {
      if (!(fields >> s.pages)) fail("bad pages");
    } else if (key == "graph_seed") {
      if (!(fields >> s.graph_seed)) fail("bad graph_seed");
    } else if (key == "k") {
      if (!(fields >> s.k)) fail("bad k");
    } else if (key == "delivery_p") {
      if (!(fields >> s.delivery_p)) fail("bad delivery_p");
    } else if (key == "t1") {
      if (!(fields >> s.t1)) fail("bad t1");
    } else if (key == "t2") {
      if (!(fields >> s.t2)) fail("bad t2");
    } else if (key == "delivery_latency") {
      if (!(fields >> s.delivery_latency)) fail("bad delivery_latency");
    } else if (key == "latency_jitter") {
      if (!(fields >> s.latency_jitter)) fail("bad latency_jitter");
    } else if (key == "reliable") {
      int flag = 0;
      if (!(fields >> flag)) fail("bad reliable");
      s.reliable = flag != 0;
    } else if (key == "worklist") {
      int flag = 0;
      if (!(fields >> flag)) fail("bad worklist");
      s.worklist = flag != 0;
    } else if (key == "serve") {
      int flag = 0;
      if (!(fields >> flag)) fail("bad serve");
      s.serve = flag != 0;
    } else if (key == "recovery") {
      int flag = 0;
      if (!(fields >> flag)) fail("bad recovery");
      s.recovery = flag != 0;
    } else if (key == "stability_epsilon") {
      if (!(fields >> s.stability_epsilon)) fail("bad stability_epsilon");
    } else if (key == "warm_start_scale") {
      if (!(fields >> s.warm_start_scale)) fail("bad warm_start_scale");
    } else if (key == "engine_seed") {
      if (!(fields >> s.engine_seed)) fail("bad engine_seed");
    } else if (key == "active_time") {
      if (!(fields >> s.active_time)) fail("bad active_time");
    } else {
      fail("unknown key '" + key + "'");
    }
  }
  if (s.pages == 0 || s.k == 0) {
    throw std::runtime_error("Scenario::parse: incomplete trace (pages/k)");
  }
  std::stable_sort(s.ops.begin(), s.ops.end(),
                   [](const ScheduleOp& a, const ScheduleOp& b) {
                     return a.time < b.time;
                   });
  return s;
}

Scenario Scenario::parse_text(const std::string& text) {
  std::istringstream in(text);
  return parse(in);
}

}  // namespace p2prank::check
