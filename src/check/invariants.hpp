// Runtime theorem checking for chaos scenarios.
//
// The InvariantChecker watches one DistributedRanking run and, at every
// sample point, machine-checks the properties the paper proves (Section 4.3
// + Appendix) plus the engine's own bookkeeping:
//
//   monotone     per-page rank never decreases (Thm 4.1). Holds from R0 = 0
//                and from any *consistent sub-fixed-point* start (scaled
//                warm start, or restore from a checkpoint saved during a
//                monotone phase — any snapshot of a monotone run satisfies
//                R <= F(R), so regrowth from it is monotone again). A crash
//                dis-arms the check globally, not just for the crashed
//                group: the rebooted ranker re-sends Y computed from its
//                re-grown (lower) ranks, and since Refresh X replaces
//                rather than maxes, the lowered contributions propagate and
//                legitimately decrease peers' ranks for an unbounded
//                settling period. Only a consistency-restoring restore
//                re-arms monotonicity.
//   bound        per-page rank <= centralized fixed point R* (Thm 4.2).
//   finite       every rank is finite and non-negative, always.
//   counters     messages_lost <= messages_sent, both non-decreasing;
//                per-group records sum to the records total; outer steps
//                non-decreasing; with stability detection on, one status
//                message per outer step; reliable-exchange counters
//                (retransmissions, acks, duplicates) non-decreasing and
//                acks_delivered <= acks_sent.
//   epochs       (reliable mode) the receiver-side accepted epoch of every
//                ordered ranker pair is non-decreasing — unconditionally,
//                across crashes and churn, because epochs are transport-
//                session state, not application state.
//   zombie       zombie_retransmits() stays 0: no retransmit timer ever
//                finds its epoch both pending and acked (an ack clears the
//                pending epoch atomically). A nonzero count is a regression
//                in the ack bookkeeping, not a tunable.
//   corrupt-applied  corrupt_frames_applied() stays 0: no byte-flipped
//                frame ever survives the codec's checksum + header
//                validation and reaches a ranker's X (DESIGN.md §13).
//   slice-guard  slices_rejected() stays 0: the refresh-time payload guard
//                (NaN/Inf/negative/order) behind the codec never fires —
//                garbage is quarantined at decode, one layer earlier.
//   ownership    every page has exactly one owning ranker — churn handoffs
//                (leave/join) conserve page ownership exactly (no page
//                orphaned, none duplicated).
//   convergence  (checked by the runner) a loss-free, fault-free tail must
//                reach the centralized ranks.
//
// A violation is a plain value naming the invariant, the virtual time, and
// a human-readable detail — the ScenarioRunner attaches them to the trace.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "engine/distributed.hpp"

namespace p2prank::check {

struct Violation {
  /// "monotone" | "bound" | "finite" | "counters" | "epochs" | "zombie" |
  /// "corrupt-applied" | "slice-guard" | "ownership" | "convergence" —
  /// plus the runner-side probes: "serve-*", "recover-ledger",
  /// "recover-epoch"
  std::string invariant;
  double time = 0.0;      ///< virtual time of the failing sample
  std::string detail;
};

class InvariantChecker {
 public:
  /// `reference` is the centralized fixed point R* of the graph the engine
  /// runs on. `check_monotone`/`check_bound` gate the theorem invariants
  /// (disabled after a mid-run graph update, where the paper's premises are
  /// gone). `expect_status_per_step` mirrors stability_epsilon > 0. The
  /// monotone baseline starts from the engine's *current* ranks, so
  /// construct the checker after any warm start.
  InvariantChecker(const engine::DistributedRanking& sim,
                   std::vector<double> reference, bool check_monotone,
                   bool check_bound, bool expect_status_per_step);

  /// The runner crashed a non-empty group: its pages drop to 0 and the
  /// lowered Y it will re-send makes peers non-monotone too — dis-arm the
  /// monotone check until a consistency-restoring restore.
  void on_crash(std::uint32_t group);
  /// The runner crashed every group and warm-started from a checkpoint.
  /// `consistent` says the checkpoint was saved during a monotone phase
  /// (no un-restored crash, theorems' premises intact): if so — and the
  /// checker was constructed with monotone checking on — the monotone
  /// invariant re-arms with the restored vector as baseline.
  void on_restore(std::span<const double> restored_ranks, bool consistent);

  [[nodiscard]] bool monotone_armed() const noexcept { return monotone_armed_; }

  /// Check every invariant against the engine's current state. Appends at
  /// most one violation per invariant kind per call.
  void check_sample(std::vector<Violation>& out);

  [[nodiscard]] std::uint64_t samples_checked() const noexcept {
    return samples_checked_;
  }

  /// Absolute tolerance for the monotone/bound comparisons (ranks are O(1);
  /// fp noise from the fused sweeps stays orders of magnitude below this).
  static constexpr double kTol = 1e-9;

 private:
  const engine::DistributedRanking& sim_;
  std::vector<double> reference_;
  std::vector<double> baseline_;  ///< per-page monotone floor
  bool check_monotone_;   ///< ctor-time gate (premises of Thm 4.1 ever held)
  bool monotone_armed_;   ///< currently armed (no un-restored crash)
  bool check_bound_;
  bool expect_status_per_step_;
  std::uint64_t prev_sent_ = 0;
  std::uint64_t prev_lost_ = 0;
  std::uint64_t prev_steps_ = 0;
  std::uint64_t prev_retransmissions_ = 0;
  std::uint64_t prev_acks_sent_ = 0;
  std::uint64_t prev_acks_delivered_ = 0;
  std::uint64_t prev_duplicates_ = 0;
  std::uint64_t prev_churn_ = 0;
  /// Row-major k x k accepted-epoch high-water marks from the last sample.
  std::vector<std::uint64_t> prev_epochs_;
  std::uint64_t samples_checked_ = 0;
};

}  // namespace p2prank::check
