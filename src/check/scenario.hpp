// Seeded chaos scenarios (FoundationDB-style simulation testing).
//
// One 64-bit seed deterministically expands into a full experiment: a
// synthetic crawl, a partition, an engine configuration (DPR1/DPR2, loss,
// wait interval, optional warm start), and a randomized *fault schedule* —
// crash/pause/resume at random virtual times, loss-probability bursts,
// checkpoint save/restore, and an optional mid-run link-graph update. The
// ScenarioRunner (runner.hpp) drives DistributedRanking through the
// schedule while the InvariantChecker (invariants.hpp) holds the paper's
// theorems (4.1 monotonicity, 4.2 boundedness) plus engine bookkeeping to
// account at every sample.
//
// Scenarios serialize to a line-oriented text trace: replaying the trace —
// or the same seed — reproduces the identical run, because every stochastic
// choice in the engine flows from seeded RNG streams and the event queue
// breaks timestamp ties deterministically.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "engine/engine_types.hpp"

namespace p2prank::check {

/// One fault injected at a virtual time.
enum class OpKind {
  kCrash,              ///< crash_group(group): wipe a ranker's state
  kPause,              ///< pause_group(group)
  kResume,             ///< resume_group(group)
  kSetLoss,            ///< set_delivery_probability(value) — loss burst edge
  kSaveCheckpoint,     ///< serialize current global ranks (in-memory file)
  kRestoreCheckpoint,  ///< crash every group, warm-start from the last save
                       ///< (no-op when nothing was saved yet)
  kGraphUpdate,        ///< mutate the link graph (seed), rebuild the engine
  kLeave,              ///< leave_group(group, group2): ranker churn, pages
                       ///< hand off to the successor (no-op when invalid)
  kJoin,               ///< join_group(group, group2): an empty ranker joins,
                       ///< taking half of donor group2 (no-op when invalid)
  kSetAckLoss,         ///< set_ack_delivery_probability(value) — ack-only
                       ///< loss burst (reliable mode; no-op otherwise)
  kSetJitter,          ///< set_latency_jitter(value) — reorder burst edge
  kPartition,          ///< set_partition(seed = side-A group bitmask,
                       ///< value = A→B delivery p, value2 = B→A delivery p).
                       ///< seed == kCutBusiestGroup resolves at injection
                       ///< time to the group owning the most pages.
  kHeal,               ///< heal_partition(): clear the active cut
  kCorrupt,            ///< set_corruption(value): per-frame byte-flip
                       ///< probability (0 = end of the corruption burst)
};

[[nodiscard]] std::string_view op_kind_name(OpKind kind) noexcept;

struct ScheduleOp {
  double time = 0.0;          ///< absolute virtual time of injection
  OpKind kind = OpKind::kCrash;
  std::uint32_t group = 0;    ///< crash/pause/resume/leave/join target
  std::uint32_t group2 = 0;   ///< kLeave: successor; kJoin: donor
  double value = 0.0;         ///< kSetLoss/kSetAckLoss/kSetJitter/kCorrupt:
                              ///< new value; kPartition: A→B delivery p
  double value2 = 0.0;        ///< kPartition: B→A delivery p (asymmetric)
  std::uint64_t seed = 0;     ///< kGraphUpdate: mutation seed;
                              ///< kPartition: side-A group bitmask
};

/// kPartition sentinel mask: isolate whichever group owns the most pages
/// when the op fires (lowest index on ties). A literal mask derived only
/// from the seed can land on a group with no pages or no cut edges — a cut
/// nothing ever crosses — which would let a --broken self-test scenario
/// finish without the evict→rejoin arc its planted fault needs. Resolved in
/// the runner from deterministic engine state, so replays are exact; never
/// produced by the generator's literal-mask path (masks there are proper
/// subsets of the low k bits, k <= 25).
inline constexpr std::uint64_t kCutBusiestGroup = ~std::uint64_t{0};

enum class PartitionKind { kHashUrl, kHashSite, kRandom };

/// A fully specified chaos experiment. Everything needed to replay it is a
/// plain value; Scenario::from_seed derives one from a single integer.
struct Scenario {
  std::uint64_t origin_seed = 0;  ///< generating seed (0 = hand-built)

  // Workload.
  std::uint32_t pages = 400;
  std::uint64_t graph_seed = 1;
  std::uint32_t k = 8;
  PartitionKind partition = PartitionKind::kHashUrl;

  // Engine configuration.
  engine::Algorithm algorithm = engine::Algorithm::kDPR1;
  double delivery_p = 1.0;
  double t1 = 0.0;
  double t2 = 6.0;
  double delivery_latency = 0.0;
  /// Per-message uniform extra delivery delay in [0, latency_jitter) —
  /// reorders same-pair messages. With `reliable` off this is the stale-Y
  /// hazard (the runner dis-arms the monotone theorem); with it on the
  /// epoch filter rejects the stale slices and the theorems stay armed.
  double latency_jitter = 0.0;
  /// Run the reliable exchange layer (epochs + ack/retransmit + suspicion)
  /// instead of the paper's fire-and-forget channel.
  bool reliable = false;
  /// Route every group's local iteration through the residual-driven
  /// worklist kernel in exact mode (worklist_epsilon = 0, DESIGN.md §6).
  /// Exactness means every invariant the checker enforces must hold
  /// unchanged — this flag exists so the chaos corpus can prove it.
  bool worklist = false;
  /// Attach a serve::SnapshotStore to the engine and probe the serving
  /// contract (DESIGN.md §12) at every sample: a snapshot exists, its
  /// epochs are consistent and monotone, its top-K matches a brute-force
  /// sort of its own ranks, and restores mark it stale exactly once before
  /// the warm start republishes. Attaching is pure observation, so every
  /// other invariant must hold unchanged with the flag on.
  bool serve = false;
  /// Attach a recover::RecoverySupervisor: autonomous suspicion → eviction
  /// → ownership handoff → rejoin, ticked at every sample, with its
  /// ownership ledger cross-checked against the engine (DESIGN.md §13).
  /// Implies `reliable` (the supervisor reads the failure detector).
  bool recovery = false;
  double stability_epsilon = 0.0;
  /// 0 = cold start (the theorems' R0 = 0 premise). Otherwise the engine
  /// warm-starts from scale·R*, which is still a sub-fixed-point start
  /// (F(s·R*) = s·R* + (1−s)·βE ≥ s·R*), so monotonicity still holds.
  double warm_start_scale = 0.0;
  std::uint64_t engine_seed = 7;

  /// Virtual-time window the schedule spans. After it, the runner lifts
  /// every fault (p = 1, all groups resumed) and demands convergence.
  double active_time = 60.0;

  std::vector<ScheduleOp> ops;  ///< sorted by time

  /// Deterministically expand a seed into a scenario (same seed, same
  /// scenario, forever — the corpus file depends on it).
  [[nodiscard]] static Scenario from_seed(std::uint64_t seed);

  /// Line-oriented text trace ("key value" header + "op TIME KIND ARG"
  /// lines, '#' comments ignored).
  void serialize(std::ostream& out) const;
  [[nodiscard]] std::string to_text() const;
  /// Throws std::runtime_error on malformed traces.
  [[nodiscard]] static Scenario parse(std::istream& in);
  [[nodiscard]] static Scenario parse_text(const std::string& text);
};

}  // namespace p2prank::check
