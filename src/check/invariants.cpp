#include "check/invariants.hpp"

#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace p2prank::check {

InvariantChecker::InvariantChecker(const engine::DistributedRanking& sim,
                                   std::vector<double> reference,
                                   bool check_monotone, bool check_bound,
                                   bool expect_status_per_step)
    : sim_(sim),
      reference_(std::move(reference)),
      baseline_(sim.global_ranks()),
      check_monotone_(check_monotone),
      monotone_armed_(check_monotone),
      check_bound_(check_bound),
      expect_status_per_step_(expect_status_per_step) {
  if (reference_.size() != baseline_.size()) {
    throw std::invalid_argument("InvariantChecker: reference size mismatch");
  }
}

void InvariantChecker::on_crash(std::uint32_t group) {
  // A crash breaks Thm 4.1's premise for EVERY page, not just the crashed
  // group's: the rebooted ranker's next Y sends are computed from its reset
  // (near-zero) ranks and *replace* the higher pre-crash entries in peers'
  // X, so peers' ranks legitimately decrease — and the dip cascades
  // transitively for an unbounded settling period. Dis-arm monotonicity
  // until a consistency-restoring restore; bound/finite/counters stay on.
  (void)group;
  monotone_armed_ = false;
}

void InvariantChecker::on_restore(std::span<const double> restored_ranks,
                                  bool consistent) {
  if (restored_ranks.size() != baseline_.size()) {
    throw std::invalid_argument("InvariantChecker: restored size mismatch");
  }
  baseline_.assign(restored_ranks.begin(), restored_ranks.end());
  // A restore crashes every group and warm-starts from the checkpoint,
  // which re-primes every X slice consistently from the restored vector.
  // If that vector was saved during a monotone phase it satisfies
  // R <= F(R) (each page's value came from an earlier solve whose X inputs
  // have only grown since), so regrowth from it is monotone again.
  monotone_armed_ = check_monotone_ && consistent;
}

void InvariantChecker::check_sample(std::vector<Violation>& out) {
  ++samples_checked_;
  const double t = sim_.now();
  const auto ranks = sim_.global_ranks();
  const auto page_detail = [&](std::size_t page, const char* relation,
                               double limit) {
    std::ostringstream msg;
    msg.precision(17);
    msg << "page " << page << ": rank " << ranks[page] << ' ' << relation << ' '
        << limit;
    return msg.str();
  };

  // finite: always-on sanity floor under every other check.
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    if (!std::isfinite(ranks[i]) || ranks[i] < -kTol) {
      out.push_back({"finite", t, page_detail(i, "not finite/non-negative;", 0.0)});
      break;
    }
  }

  if (monotone_armed_) {
    for (std::size_t i = 0; i < ranks.size(); ++i) {
      if (ranks[i] < baseline_[i] - kTol) {
        out.push_back({"monotone", t,
                       page_detail(i, "decreased below baseline", baseline_[i])});
        break;
      }
    }
  }
  if (check_bound_) {
    for (std::size_t i = 0; i < ranks.size(); ++i) {
      if (ranks[i] > reference_[i] + kTol) {
        out.push_back(
            {"bound", t, page_detail(i, "exceeds centralized R*", reference_[i])});
        break;
      }
    }
  }
  // The sequence between fault resets is what must be monotone; ratchet the
  // baseline to the ranks just observed (even when the monotone check is
  // off, keeping it current costs nothing and simplifies re-enabling).
  baseline_.assign(ranks.begin(), ranks.end());

  // counters
  const std::uint64_t sent = sim_.messages_sent();
  const std::uint64_t lost = sim_.messages_lost();
  const std::uint64_t steps = sim_.total_outer_steps();
  const auto per_group = sim_.records_sent_per_group();
  const std::uint64_t group_records =
      std::accumulate(per_group.begin(), per_group.end(), std::uint64_t{0});
  std::ostringstream counter_fail;
  if (lost > sent) {
    counter_fail << "messages_lost " << lost << " > messages_sent " << sent;
  } else if (sent < prev_sent_ || lost < prev_lost_) {
    counter_fail << "message counters went backwards (sent " << prev_sent_
                 << "->" << sent << ", lost " << prev_lost_ << "->" << lost
                 << ")";
  } else if (group_records != sim_.records_sent()) {
    counter_fail << "per-group records sum " << group_records
                 << " != records_sent " << sim_.records_sent();
  } else if (steps < prev_steps_) {
    counter_fail << "total_outer_steps went backwards (" << prev_steps_ << "->"
                 << steps << ")";
  } else if (expect_status_per_step_ && sim_.status_messages() != steps) {
    counter_fail << "status_messages " << sim_.status_messages()
                 << " != total_outer_steps " << steps;
  }
  if (const auto msg = counter_fail.str(); !msg.empty()) {
    out.push_back({"counters", t, msg});
  }
  prev_sent_ = sent;
  prev_lost_ = lost;
  prev_steps_ = steps;
}

}  // namespace p2prank::check
