#include "check/invariants.hpp"

#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace p2prank::check {

InvariantChecker::InvariantChecker(const engine::DistributedRanking& sim,
                                   std::vector<double> reference,
                                   bool check_monotone, bool check_bound,
                                   bool expect_status_per_step)
    : sim_(sim),
      reference_(std::move(reference)),
      baseline_(sim.global_ranks()),
      check_monotone_(check_monotone),
      monotone_armed_(check_monotone),
      check_bound_(check_bound),
      expect_status_per_step_(expect_status_per_step) {
  if (reference_.size() != baseline_.size()) {
    throw std::invalid_argument("InvariantChecker: reference size mismatch");
  }
}

void InvariantChecker::on_crash(std::uint32_t group) {
  // A crash breaks Thm 4.1's premise for EVERY page, not just the crashed
  // group's: the rebooted ranker's next Y sends are computed from its reset
  // (near-zero) ranks and *replace* the higher pre-crash entries in peers'
  // X, so peers' ranks legitimately decrease — and the dip cascades
  // transitively for an unbounded settling period. Dis-arm monotonicity
  // until a consistency-restoring restore; bound/finite/counters stay on.
  (void)group;
  monotone_armed_ = false;
}

void InvariantChecker::on_restore(std::span<const double> restored_ranks,
                                  bool consistent) {
  if (restored_ranks.size() != baseline_.size()) {
    throw std::invalid_argument("InvariantChecker: restored size mismatch");
  }
  baseline_.assign(restored_ranks.begin(), restored_ranks.end());
  // A restore crashes every group and warm-starts from the checkpoint,
  // which re-primes every X slice consistently from the restored vector.
  // If that vector was saved during a monotone phase it satisfies
  // R <= F(R) (each page's value came from an earlier solve whose X inputs
  // have only grown since), so regrowth from it is monotone again.
  monotone_armed_ = check_monotone_ && consistent;
}

void InvariantChecker::check_sample(std::vector<Violation>& out) {
  ++samples_checked_;
  const double t = sim_.now();
  const auto ranks = sim_.global_ranks();
  const auto page_detail = [&](std::size_t page, const char* relation,
                               double limit) {
    std::ostringstream msg;
    msg.precision(17);
    msg << "page " << page << ": rank " << ranks[page] << ' ' << relation << ' '
        << limit;
    return msg.str();
  };

  // finite: always-on sanity floor under every other check.
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    if (!std::isfinite(ranks[i]) || ranks[i] < -kTol) {
      out.push_back({"finite", t, page_detail(i, "not finite/non-negative;", 0.0)});
      break;
    }
  }

  if (monotone_armed_) {
    for (std::size_t i = 0; i < ranks.size(); ++i) {
      if (ranks[i] < baseline_[i] - kTol) {
        out.push_back({"monotone", t,
                       page_detail(i, "decreased below baseline", baseline_[i])});
        break;
      }
    }
  }
  if (check_bound_) {
    for (std::size_t i = 0; i < ranks.size(); ++i) {
      if (ranks[i] > reference_[i] + kTol) {
        out.push_back(
            {"bound", t, page_detail(i, "exceeds centralized R*", reference_[i])});
        break;
      }
    }
  }
  // The sequence between fault resets is what must be monotone; ratchet the
  // baseline to the ranks just observed (even when the monotone check is
  // off, keeping it current costs nothing and simplifies re-enabling).
  baseline_.assign(ranks.begin(), ranks.end());

  // counters
  const std::uint64_t sent = sim_.messages_sent();
  const std::uint64_t lost = sim_.messages_lost();
  const std::uint64_t steps = sim_.total_outer_steps();
  const auto per_group = sim_.records_sent_per_group();
  const std::uint64_t group_records =
      std::accumulate(per_group.begin(), per_group.end(), std::uint64_t{0});
  std::ostringstream counter_fail;
  if (lost > sent) {
    counter_fail << "messages_lost " << lost << " > messages_sent " << sent;
  } else if (sent < prev_sent_ || lost < prev_lost_) {
    counter_fail << "message counters went backwards (sent " << prev_sent_
                 << "->" << sent << ", lost " << prev_lost_ << "->" << lost
                 << ")";
  } else if (group_records != sim_.records_sent()) {
    counter_fail << "per-group records sum " << group_records
                 << " != records_sent " << sim_.records_sent();
  } else if (steps < prev_steps_) {
    counter_fail << "total_outer_steps went backwards (" << prev_steps_ << "->"
                 << steps << ")";
  } else if (expect_status_per_step_ && sim_.status_messages() != steps) {
    counter_fail << "status_messages " << sim_.status_messages()
                 << " != total_outer_steps " << steps;
  }
  // Reliable-exchange counters (all identically 0 with fire-and-forget, so
  // these checks are free there).
  const std::uint64_t rexmit = sim_.retransmissions();
  const std::uint64_t acks_sent = sim_.acks_sent();
  const std::uint64_t acks_delivered = sim_.acks_delivered();
  const std::uint64_t dups = sim_.duplicates_rejected();
  const std::uint64_t churn = sim_.churn_events();
  if (counter_fail.str().empty()) {
    if (rexmit < prev_retransmissions_ || acks_sent < prev_acks_sent_ ||
        acks_delivered < prev_acks_delivered_ || dups < prev_duplicates_ ||
        churn < prev_churn_) {
      counter_fail << "reliability counters went backwards";
    } else if (acks_delivered > acks_sent) {
      counter_fail << "acks_delivered " << acks_delivered << " > acks_sent "
                   << acks_sent;
    } else if (rexmit > sent) {
      counter_fail << "retransmissions " << rexmit << " > messages_sent " << sent;
    }
  }
  if (const auto msg = counter_fail.str(); !msg.empty()) {
    out.push_back({"counters", t, msg});
  }
  prev_sent_ = sent;
  prev_lost_ = lost;
  prev_steps_ = steps;
  prev_retransmissions_ = rexmit;
  prev_acks_sent_ = acks_sent;
  prev_acks_delivered_ = acks_delivered;
  prev_duplicates_ = dups;
  prev_churn_ = churn;

  // zombie: a retransmit timer observed its epoch pending AND acked — the
  // ack path failed to clear the pending epoch. Impossible by construction;
  // a nonzero count is a transport regression, flagged immediately.
  if (sim_.zombie_retransmits() != 0) {
    std::ostringstream msg;
    msg << sim_.zombie_retransmits()
        << " retransmit timer(s) fired for an already-acked epoch";
    out.push_back({"zombie", t, msg.str()});
  }

  // corrupt-applied: a corrupted frame survived checksum + header validation
  // and was applied. A 64-bit FNV collision landing on a valid frame is
  // astronomically unlikely; any nonzero count means the codec's validation
  // order regressed.
  if (sim_.corrupt_frames_applied() != 0) {
    std::ostringstream msg;
    msg << sim_.corrupt_frames_applied()
        << " corrupted frame(s) passed validation and were applied";
    out.push_back({"corrupt-applied", t, msg.str()});
  }
  // slice-guard: the refresh-time NaN/Inf/negative/order guard behind the
  // codec fired. The codec quarantines garbage first, so in simulation this
  // defense-in-depth layer must never be the one that catches it.
  if (sim_.slices_rejected() != 0) {
    std::ostringstream msg;
    msg << sim_.slices_rejected()
        << " slice(s) rejected by the refresh-time payload guard";
    out.push_back({"slice-guard", t, msg.str()});
  }

  // epochs: every ordered pair's accepted epoch is non-decreasing. This is
  // unconditional — crashes wipe application state, churn rebuilds the
  // wiring, but the transport session's sequence numbers survive both.
  const std::uint32_t k = sim_.num_groups();
  if (prev_epochs_.empty()) prev_epochs_.assign(std::size_t{k} * k, 0);
  for (std::uint32_t src = 0; src < k; ++src) {
    for (std::uint32_t dst = 0; dst < k; ++dst) {
      const std::uint64_t e = sim_.accepted_epoch(src, dst);
      std::uint64_t& prev = prev_epochs_[std::size_t{src} * k + dst];
      if (e < prev) {
        std::ostringstream msg;
        msg << "accepted epoch for pair (" << src << " -> " << dst
            << ") went backwards: " << prev << " -> " << e;
        out.push_back({"epochs", t, msg.str()});
        src = k;  // one violation per sample is enough
        break;
      }
      prev = e;
    }
  }

  // ownership: exactly one owner per page. current_assignment() reports
  // UINT32_MAX for orphans, and the total group sizes catch duplicates.
  const auto assignment = sim_.current_assignment();
  std::size_t orphan = assignment.size();
  for (std::size_t p = 0; p < assignment.size(); ++p) {
    if (assignment[p] == UINT32_MAX && orphan == assignment.size()) orphan = p;
  }
  std::size_t member_total = 0;
  for (std::uint32_t grp = 0; grp < k; ++grp) member_total += sim_.group(grp).size();
  if (orphan != assignment.size() || member_total != assignment.size()) {
    std::ostringstream msg;
    if (orphan != assignment.size()) {
      msg << "page " << orphan << " has no owning ranker";
    } else {
      msg << "group sizes sum to " << member_total << " for "
          << assignment.size() << " pages (a page is owned twice)";
    }
    out.push_back({"ownership", t, msg.str()});
  }
}

}  // namespace p2prank::check
