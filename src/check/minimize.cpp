#include "check/minimize.hpp"

#include <algorithm>

namespace p2prank::check {

MinimizeResult minimize_schedule(
    const Scenario& failing,
    const std::function<bool(const Scenario&)>& still_fails,
    std::size_t max_attempts) {
  MinimizeResult result;
  result.scenario = failing;
  Scenario& cur = result.scenario;

  // Chunked passes: drop [i, i+len) for len = n, n/2, ..., 1. Trying the
  // whole schedule first matters — a broken *engine* fails with zero ops,
  // and one attempt proves it.
  for (std::size_t len = std::max<std::size_t>(cur.ops.size(), 1); len >= 1;
       len /= 2) {
    bool removed_any = true;
    while (removed_any && result.attempts < max_attempts) {
      removed_any = false;
      for (std::size_t i = 0;
           i + len <= cur.ops.size() && result.attempts < max_attempts;) {
        Scenario candidate = cur;
        candidate.ops.erase(
            candidate.ops.begin() + static_cast<std::ptrdiff_t>(i),
            candidate.ops.begin() + static_cast<std::ptrdiff_t>(i + len));
        ++result.attempts;
        if (still_fails(candidate)) {
          cur = std::move(candidate);
          removed_any = true;
          // keep i: the next chunk slid into place
        } else {
          i += 1;  // overlapping windows; len-sized stride would skip ops
        }
      }
    }
    if (len == 1) {
      // A full single-op pass with no removal == 1-minimal.
      result.minimal = !removed_any && result.attempts < max_attempts;
      break;
    }
  }
  return result;
}

}  // namespace p2prank::check
