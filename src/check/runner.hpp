// ScenarioRunner: drive DistributedRanking through a chaos Scenario and
// check invariants at every sample.
//
// The run has two phases. During the *active window* ([0, active_time]) the
// schedule's faults are injected at their virtual times while the
// InvariantChecker audits every sample. Then the runner lifts every fault —
// delivery probability back to 1, every paused group resumed — and demands
// *eventual convergence*: the relative error against the centralized fixed
// point must drop below tail_error_threshold within tail_max_time further
// virtual time units (the asynchronous-iteration convergence guarantee for
// loss-free tails). A run is clean iff no invariant fired and the tail
// converged.
//
// A mid-run kGraphUpdate rebuilds the engine on the mutated graph
// (warm-started via carry_ranks) and recomputes the reference; from that
// point the monotone/bound theorems no longer apply (the paper's Section
// 4.3 caveat) and only finiteness, counters, and tail convergence — against
// the *new* reference — are checked.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/invariants.hpp"
#include "check/scenario.hpp"
#include "util/thread_pool.hpp"

namespace p2prank::obs {
class MetricsRegistry;
class Tracer;
}  // namespace p2prank::obs

namespace p2prank::check {

struct RunnerOptions {
  /// Virtual time between invariant samples.
  double sample_interval = 2.0;
  /// Relative error the loss-free tail must reach...
  double tail_error_threshold = 2e-6;
  /// ...within this much virtual time past the active window.
  double tail_max_time = 4000.0;
  /// Stop a run after this many violations (each sample adds at most one
  /// violation per invariant kind, so a broken run terminates quickly).
  std::size_t max_violations = 4;
  /// Chaos-harness self-test: deliberately break the engine (the largest
  /// group never refreshes X) — the checker MUST flag the run.
  bool break_skip_refresh = false;
  /// Recovery-harness self-test: the supervisor "forgets" its ledger update
  /// on rejoin — the ledger cross-check MUST flag the run (recovery
  /// scenarios only; a no-op otherwise).
  bool break_supervisor_ledger = false;
  /// Force every kGraphUpdate through the cold rebuild-then-warm-start path
  /// even when the delta qualifies for the incremental frontier carry
  /// (link-only, worklist scenario, assignment unchanged). The determinism
  /// gates diff runs with this on and off: at ε = 0 the two paths must
  /// produce bitwise-identical results.
  bool full_graph_rebuild = false;
  double alpha = 0.85;
  /// Optional observability sinks (DESIGN.md §11). Pure observation: a run
  /// with and without them produces bitwise-identical results. The runner
  /// forwards both into the engine it builds and additionally records the
  /// chaos schedule itself (fault ops as trace instants, op/sample counts).
  obs::MetricsRegistry* metrics = nullptr;
  obs::Tracer* tracer = nullptr;
};

struct ScenarioResult {
  std::vector<Violation> violations;
  bool converged = false;
  double final_error = 0.0;
  double end_time = 0.0;  ///< total virtual time simulated (across rebuilds)
  std::uint64_t samples_checked = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_lost = 0;
  std::uint64_t retransmissions = 0;      ///< reliable mode only
  std::uint64_t duplicates_rejected = 0;  ///< stale slices the epoch filter ate
  std::uint64_t churn_events = 0;         ///< completed leave/join handoffs
  std::uint64_t partition_drops = 0;      ///< messages eaten by an active cut
  std::uint64_t frames_quarantined = 0;   ///< corrupt frames rejected at decode
  std::uint64_t evictions = 0;            ///< supervisor-driven (recovery mode)
  std::uint64_t rejoins = 0;              ///< supervisor-driven (recovery mode)

  [[nodiscard]] bool ok() const noexcept { return violations.empty(); }
  /// One log line: "ok ..." or "FAIL <invariant> ...".
  [[nodiscard]] std::string summary() const;
};

class ScenarioRunner {
 public:
  explicit ScenarioRunner(util::ThreadPool& pool, RunnerOptions opts = {});

  /// Run one scenario start to finish. Deterministic: same scenario, same
  /// result. Throws std::invalid_argument on nonsensical scenarios (k = 0,
  /// t2 < t1, ...).
  [[nodiscard]] ScenarioResult run(const Scenario& s);

  [[nodiscard]] const RunnerOptions& options() const noexcept { return opts_; }

 private:
  util::ThreadPool& pool_;
  RunnerOptions opts_;
};

}  // namespace p2prank::check
