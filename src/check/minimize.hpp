// Greedy schedule minimization (delta debugging, ddmin-style).
//
// Given a failing scenario, shrink its fault schedule to a locally minimal
// reproducing op list: repeatedly drop contiguous chunks (halving the chunk
// size down to single ops) and keep any removal after which the scenario
// still fails. The result is 1-minimal — removing any single remaining op
// makes the failure disappear — unless the attempt budget runs out first.
// Replays are deterministic, so "still fails" is a pure predicate of the
// candidate scenario.
#pragma once

#include <cstddef>
#include <functional>

#include "check/scenario.hpp"

namespace p2prank::check {

struct MinimizeResult {
  Scenario scenario;        ///< the shrunk scenario (same config, fewer ops)
  std::size_t attempts = 0; ///< candidate replays executed
  bool minimal = false;     ///< true when 1-minimality was reached in budget
};

/// `still_fails` must return true when the candidate scenario reproduces
/// the violation (typically: !runner.run(candidate).ok()). The input
/// scenario is assumed failing; its ops only ever shrink.
[[nodiscard]] MinimizeResult minimize_schedule(
    const Scenario& failing,
    const std::function<bool(const Scenario&)>& still_fails,
    std::size_t max_attempts = 256);

}  // namespace p2prank::check
