// Central registry of metric and trace-event names.
//
// Every name passed to obs::MetricsRegistry or obs::Tracer MUST be one of
// the constants below — the p2plint rule `metric-name-registry` rejects
// inline string literals at those call sites. One declaration per name
// keeps the namespace greppable, collision-free, and stable across PRs
// (snapshot keys are part of the observability contract, DESIGN.md §11).
//
// Naming scheme: `<subsystem>.<quantity>`, lower_snake_case, no units in
// the name unless disambiguation needs them (`*_bytes`, `*_log10`).
// Indexed variants (per ranker group) append `.<index>` via the indexed
// registry accessors; the constant names the family.
#pragma once

#include <string_view>

namespace p2prank::obs::names {

// --- engine: the paper's §4.4/§4.5 quantities --------------------------
inline constexpr std::string_view kEngineOuterSteps = "engine.outer_steps";
inline constexpr std::string_view kEngineInnerSweeps = "engine.inner_sweeps";
inline constexpr std::string_view kEngineMessagesSent = "engine.messages_sent";
inline constexpr std::string_view kEngineMessagesLost = "engine.messages_lost";
inline constexpr std::string_view kEngineDeliveries = "engine.deliveries";
/// Fresh Y-slice records only — the paper's W. Retransmitted records are
/// under transport.retransmit_records, never here (see DESIGN.md §11).
inline constexpr std::string_view kEngineRecordsSent = "engine.records_sent";
inline constexpr std::string_view kEngineRecordHops = "engine.record_hops";
inline constexpr std::string_view kEngineDataBytes = "engine.data_bytes";
inline constexpr std::string_view kEngineChurnEvents = "engine.churn_events";
/// Per fresh send: record count of the Y slice (Log2Histogram).
inline constexpr std::string_view kEngineSliceRecords = "engine.slice_records";
/// Per DPR1 local solve: Jacobi iterations used (Log2Histogram).
inline constexpr std::string_view kEngineInnerIterations = "engine.inner_iterations";
/// Per outer step: log10 of the L1 residual (LinearHistogram).
inline constexpr std::string_view kEngineStepResidualLog10 =
    "engine.step_residual_log10";
/// Indexed per ranker group: outer steps executed / last L1 step residual.
inline constexpr std::string_view kEngineGroupOuterSteps = "engine.group_outer_steps";
inline constexpr std::string_view kEngineGroupResidual = "engine.group_residual";

// --- transport: reliable-exchange overhead (never mixed into engine.*) --
inline constexpr std::string_view kTransportRetransmissions =
    "transport.retransmissions";
inline constexpr std::string_view kTransportRetransmitRecords =
    "transport.retransmit_records";
inline constexpr std::string_view kTransportRetransmitBytes =
    "transport.retransmit_bytes";
inline constexpr std::string_view kTransportAcksSent = "transport.acks_sent";
inline constexpr std::string_view kTransportAcksDelivered =
    "transport.acks_delivered";
inline constexpr std::string_view kTransportDuplicatesRejected =
    "transport.duplicates_rejected";
inline constexpr std::string_view kTransportSuspicions = "transport.suspicions";
/// Messages dropped by an active partition cut (also in messages_lost).
inline constexpr std::string_view kTransportPartitionDrops =
    "transport.partition_drops";
/// Corrupted/garbage frames rejected by the codec at delivery.
inline constexpr std::string_view kTransportFramesQuarantined =
    "transport.frames_quarantined";

// --- recover: partition-tolerant self-healing (DESIGN.md §13) ------------
inline constexpr std::string_view kRecoverEvictions = "recover.evictions";
inline constexpr std::string_view kRecoverRejoins = "recover.rejoins";
/// Ledger refreshes forced by scripted (non-supervisor) membership change.
inline constexpr std::string_view kRecoverResyncs = "recover.resyncs";

// --- exchange: one-shot overlay exchange simulations (§4.4) -------------
inline constexpr std::string_view kExchangeDataMessages = "exchange.data_messages";
inline constexpr std::string_view kExchangeDataBytes = "exchange.data_bytes";
inline constexpr std::string_view kExchangeLookupMessages =
    "exchange.lookup_messages";
inline constexpr std::string_view kExchangeLookupBytes = "exchange.lookup_bytes";
inline constexpr std::string_view kExchangeRecordsDelivered =
    "exchange.records_delivered";
inline constexpr std::string_view kExchangeRecordHops = "exchange.record_hops";
inline constexpr std::string_view kExchangeRounds = "exchange.rounds";
/// Per data message: payload size in (integer) bytes (Log2Histogram).
inline constexpr std::string_view kExchangeMessageBytes = "exchange.message_bytes";

// --- pool: fork-join accounting -----------------------------------------
// Deterministic family: depends only on the work submitted, not the pool
// size (grain decompositions from parallel_for_grains are a function of
// (n, grain) alone).
inline constexpr std::string_view kPoolParallelForCalls = "pool.parallel_for_calls";
inline constexpr std::string_view kPoolGrainedCalls = "pool.grained_calls";
inline constexpr std::string_view kPoolIndices = "pool.indices";
inline constexpr std::string_view kPoolFixedGrains = "pool.fixed_grains";
// Unstable family (registered via counter_unstable, excluded from the
// default snapshot): chunking and the inline-vs-dispatch decision depend
// on the pool size, and worker claim counts race benignly.
inline constexpr std::string_view kPoolDispatches = "pool.dispatches";
inline constexpr std::string_view kPoolWorkerClaims = "pool.worker_claims";

// --- check: chaos harness -----------------------------------------------
inline constexpr std::string_view kCheckOpsApplied = "check.ops_applied";
inline constexpr std::string_view kCheckSamples = "check.samples";

// --- serve: rank serving layer (DESIGN.md §12) ---------------------------
inline constexpr std::string_view kServeQueries = "serve.queries";
inline constexpr std::string_view kServePointQueries = "serve.point_queries";
inline constexpr std::string_view kServeTopkQueries = "serve.topk_queries";
/// Queries answered before any snapshot was published (no epoch to pin).
inline constexpr std::string_view kServeUnavailable = "serve.unavailable";
/// Queries answered from an epoch at or below the invalidation watermark
/// (served anyway — availability over freshness; see DESIGN.md §12).
inline constexpr std::string_view kServeStaleReads = "serve.stale_reads";
/// Queries whose pinned snapshot mixed shard epochs. The serving contract
/// says this is impossible; the counter is the machine check.
inline constexpr std::string_view kServeTornReads = "serve.torn_reads";
inline constexpr std::string_view kServeSnapshotsPublished =
    "serve.snapshots_published";
inline constexpr std::string_view kServeSnapshotsInvalidated =
    "serve.snapshots_invalidated";
/// Publishes that recycled a retired buffer instead of allocating.
inline constexpr std::string_view kServeBufferReuses = "serve.buffer_reuses";
/// Closed-loop query latency in virtual time units (LinearHistogram).
inline constexpr std::string_view kServeLatency = "serve.latency";
/// Exact latency quantiles / throughput of a finished load run (gauges).
inline constexpr std::string_view kServeLatencyP50 = "serve.latency_p50";
inline constexpr std::string_view kServeLatencyP99 = "serve.latency_p99";
inline constexpr std::string_view kServeQps = "serve.qps";
/// High-water mark of the service queue (gauge).
inline constexpr std::string_view kServeMaxQueueDepth = "serve.max_queue_depth";
/// Queries answered past the staleness bound and flagged as such.
inline constexpr std::string_view kServeDegradedReads = "serve.degraded_reads";
/// Queries that touched a shard marked unavailable by the supervisor.
inline constexpr std::string_view kServeShardUnavailableReads =
    "serve.shard_unavailable_reads";
/// Reads past the staleness bound that were NOT flagged — the degraded-
/// serving contract says this is impossible; the counter is the machine
/// check (must stay 0, audited externally to the flagging path).
inline constexpr std::string_view kServeStaleBoundViolations =
    "serve.stale_bound_violations";

// --- trace event names ---------------------------------------------------
inline constexpr std::string_view kTraceStep = "engine.step";
inline constexpr std::string_view kTraceMsgFlight = "engine.msg_flight";
inline constexpr std::string_view kTraceRetransmit = "engine.retransmit";
inline constexpr std::string_view kTraceChurn = "engine.churn";
inline constexpr std::string_view kTraceChaosOp = "chaos.op";
inline constexpr std::string_view kTraceSample = "check.sample";
inline constexpr std::string_view kTracePhase = "check.phase";
/// Engine published a rank snapshot epoch into the serving sink.
inline constexpr std::string_view kTraceSnapshot = "serve.snapshot";
/// One served query's issue→completion span (closed-loop load generator).
inline constexpr std::string_view kTraceServeQuery = "serve.query";
/// RecoverySupervisor state transition (eviction / rejoin / resync).
inline constexpr std::string_view kTraceRecovery = "recover.transition";

}  // namespace p2prank::obs::names
