#include "obs/metrics.hpp"

#include "obs/metric_names.hpp"
#include "util/thread_pool.hpp"

#include <iomanip>
#include <limits>
#include <locale>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace p2prank::obs {

// Pin the wire-format version in the file that implements the writer: an
// edit to the JSON layout below must come with a schema bump here.
static_assert(kMetricsSchema == "p2prank-metrics-v1");

namespace {

/// Map::operator[] needs a std::string key; centralize the conversion.
template <typename T, typename... Args>
T& get_or_create(std::map<std::string, T, std::less<>>& m, std::string_view name,
                 Args&&... args) {
  if (const auto it = m.find(name); it != m.end()) return it->second;
  return m.emplace(std::string(name), T(std::forward<Args>(args)...)).first->second;
}

[[nodiscard]] std::string indexed(std::string_view name, std::uint32_t index) {
  std::string key(name);
  key += '.';
  key += std::to_string(index);
  return key;
}

/// Shortest round-trip decimal for a double: equal doubles -> equal bytes.
void write_double(std::ostream& out, double v) {
  std::ostringstream s;
  s.imbue(std::locale::classic());
  s << std::setprecision(std::numeric_limits<double>::max_digits10) << v;
  out << s.str();
}

/// Metric names are controlled constants, but escape the JSON specials
/// anyway so a bad name can never produce malformed output.
void write_json_string(std::ostream& out, std::string_view s) {
  out << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
  out << '"';
}

void write_log2(std::ostream& out, const util::Log2Histogram& h) {
  out << "{\"kind\": \"log2\", \"total\": " << h.total() << ", \"buckets\": [";
  bool first = true;
  for (std::size_t i = 0; i < h.bucket_count(); ++i) {
    if (h.bucket(i) == 0) continue;
    if (!first) out << ", ";
    first = false;
    out << '[' << util::Log2Histogram::bucket_floor(i) << ", "
        << util::Log2Histogram::bucket_ceil(i) << ", " << h.bucket(i) << ']';
  }
  out << "]}";
}

void write_linear(std::ostream& out, double lo, double hi, std::size_t bins,
                  const util::LinearHistogram& h) {
  out << "{\"kind\": \"linear\", \"lo\": ";
  write_double(out, lo);
  out << ", \"hi\": ";
  write_double(out, hi);
  out << ", \"bins\": " << bins << ", \"total\": " << h.total()
      << ", \"nan\": " << h.nan_count() << ", \"counts\": [";
  bool first = true;
  for (std::size_t b = 0; b < h.bins(); ++b) {
    if (h.count(b) == 0) continue;
    if (!first) out << ", ";
    first = false;
    out << '[' << b << ", " << h.count(b) << ']';
  }
  out << "]}";
}

}  // namespace

std::uint64_t& MetricsRegistry::counter(std::string_view name) {
  return get_or_create(counters_, name);
}

std::uint64_t& MetricsRegistry::counter(std::string_view name, std::uint32_t index) {
  return get_or_create(counters_, indexed(name, index));
}

std::uint64_t& MetricsRegistry::counter_unstable(std::string_view name) {
  return get_or_create(unstable_counters_, name);
}

double& MetricsRegistry::gauge(std::string_view name) {
  return get_or_create(gauges_, name);
}

double& MetricsRegistry::gauge(std::string_view name, std::uint32_t index) {
  return get_or_create(gauges_, indexed(name, index));
}

util::Log2Histogram& MetricsRegistry::log2_histogram(std::string_view name) {
  return get_or_create(log2_, name);
}

util::LinearHistogram& MetricsRegistry::linear_histogram(std::string_view name,
                                                         double lo, double hi,
                                                         std::size_t bins) {
  if (const auto it = linear_.find(name); it != linear_.end()) {
    LinearSpec& spec = it->second;
    if (spec.lo != lo || spec.hi != hi || spec.bins != bins) {
      throw std::invalid_argument("MetricsRegistry: linear histogram '" +
                                  std::string(name) +
                                  "' re-registered with different bounds");
    }
    return spec.hist;
  }
  auto [it, inserted] = linear_.emplace(
      std::string(name), LinearSpec{lo, hi, bins, util::LinearHistogram(lo, hi, bins)});
  (void)inserted;
  return it->second.hist;
}

std::uint64_t MetricsRegistry::counter_value(std::string_view name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double MetricsRegistry::gauge_value(std::string_view name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

void MetricsRegistry::write_json(std::ostream& out, bool include_unstable) const {
  out << "{\n  \"schema\": \"" << kMetricsSchema << "\",\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    write_json_string(out, name);
    out << ": " << value;
  }
  out << (first ? "},\n" : "\n  },\n");
  out << "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges_) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    write_json_string(out, name);
    out << ": ";
    write_double(out, value);
  }
  out << (first ? "},\n" : "\n  },\n");
  out << "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : log2_) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    write_json_string(out, name);
    out << ": ";
    write_log2(out, h);
  }
  for (const auto& [name, spec] : linear_) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    write_json_string(out, name);
    out << ": ";
    write_linear(out, spec.lo, spec.hi, spec.bins, spec.hist);
  }
  out << (first ? "}" : "\n  }");
  if (include_unstable) {
    out << ",\n  \"unstable_counters\": {";
    first = true;
    for (const auto& [name, value] : unstable_counters_) {
      out << (first ? "\n    " : ",\n    ");
      first = false;
      write_json_string(out, name);
      out << ": " << value;
    }
    out << (first ? "}" : "\n  }");
  }
  out << "\n}\n";
}

std::string MetricsRegistry::snapshot(bool include_unstable) const {
  std::ostringstream out;
  write_json(out, include_unstable);
  return out.str();
}

void export_pool_metrics(const util::ThreadPool& pool, MetricsRegistry& m) {
  export_pool_metrics(pool.stats(), m);
}

void export_pool_metrics(const util::ThreadPool::Stats& s, MetricsRegistry& m) {
  m.counter(names::kPoolParallelForCalls) = s.parallel_for_calls;
  m.counter(names::kPoolGrainedCalls) = s.grained_calls;
  m.counter(names::kPoolIndices) = s.indices;
  m.counter(names::kPoolFixedGrains) = s.fixed_grains;
  m.counter_unstable(names::kPoolDispatches) = s.dispatches;
  m.counter_unstable(names::kPoolWorkerClaims) = s.worker_claims;
}

}  // namespace p2prank::obs
