#include "obs/trace.hpp"

#include <iomanip>
#include <limits>
#include <locale>
#include <ostream>
#include <sstream>

namespace p2prank::obs {

// Pin the wire-format version in the file that implements the writer: an
// edit to the event JSON below must come with a schema bump here.
static_assert(kTraceSchema == "p2prank-trace-v1");

namespace {

/// Virtual seconds -> Chrome trace microseconds, printed shortest-round-trip
/// in the classic locale (deterministic bytes for equal doubles).
void write_us(std::ostream& out, double seconds) {
  std::ostringstream s;
  s.imbue(std::locale::classic());
  s << std::setprecision(std::numeric_limits<double>::max_digits10)
    << seconds * 1e6;
  out << s.str();
}

void write_json_string(std::ostream& out, std::string_view str) {
  out << '"';
  for (const char c : str) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
  out << '"';
}

}  // namespace

Tracer::Tracer(std::size_t max_events) : max_events_(max_events) {}

void Tracer::instant(std::string_view name, double t, std::uint32_t tid,
                     std::string_view detail, double value) {
  complete(name, t, -1.0, tid, detail, value);
}

void Tracer::complete(std::string_view name, double t_begin, double duration,
                      std::uint32_t tid, std::string_view detail, double value) {
  if (events_.size() >= max_events_) {
    ++dropped_;
    return;
  }
  events_.push_back(Event{std::string(name), std::string(detail), t_begin, duration,
                          value, tid});
}

void Tracer::write_chrome_json(std::ostream& out) const {
  out << "{\"traceEvents\": [";
  bool first = true;
  for (const Event& e : events_) {
    out << (first ? "\n" : ",\n") << "  {\"name\": ";
    first = false;
    write_json_string(out, e.name);
    out << ", \"ph\": \"" << (e.dur < 0.0 ? 'i' : 'X') << "\", \"ts\": ";
    write_us(out, e.t);
    if (e.dur >= 0.0) {
      out << ", \"dur\": ";
      write_us(out, e.dur);
    } else {
      out << ", \"s\": \"t\"";  // instant scope: thread
    }
    out << ", \"pid\": 1, \"tid\": " << e.tid << ", \"args\": {\"value\": ";
    {
      std::ostringstream s;
      s.imbue(std::locale::classic());
      s << std::setprecision(std::numeric_limits<double>::max_digits10) << e.value;
      out << s.str();
    }
    if (!e.detail.empty()) {
      out << ", \"detail\": ";
      write_json_string(out, e.detail);
    }
    out << "}}";
  }
  out << "\n],\n\"displayTimeUnit\": \"ms\",\n\"otherData\": {\"schema\": \""
      << kTraceSchema << "\", \"dropped\": " << dropped_ << "}\n}\n";
}

}  // namespace p2prank::obs
