// MetricsRegistry: named counters, gauges, and histograms with a
// deterministic, sorted-key JSON snapshot.
//
// Determinism contract (DESIGN.md §11):
//  - The registry is confined to the simulation thread; nothing in it is
//    synchronized. Pool workers never touch a registry — pool-side tallies
//    are exported after a join via export_pool_metrics().
//  - Iteration is sorted (std::map), so gauge sums and JSON key order are
//    a function of the metric names alone, never of insertion order.
//  - Metrics that legitimately vary across pool sizes (chunk counts, claim
//    races) go in the `counter_unstable` family, which the default
//    snapshot excludes — everything else must be bitwise-identical across
//    pool sizes and across repeated runs of the same seed.
//  - Names come from src/obs/metric_names.hpp (p2plint rule
//    `metric-name-registry`); snapshot keys are API.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>

#include "util/histogram.hpp"
#include "util/thread_annotations.hpp"
#include "util/thread_pool.hpp"

namespace p2prank::obs {

/// Schema tag stamped into every snapshot ("schema" key). Bump on any
/// change to the JSON layout, not on new metric names.
inline constexpr std::string_view kMetricsSchema = "p2prank-metrics-v1";

class MetricsRegistry {
 public:
  /// Get-or-create. The returned reference stays valid for the registry's
  /// lifetime (std::map nodes are stable), so hot paths should call once
  /// and cache the pointer.
  std::uint64_t& counter(std::string_view name);
  /// Indexed family member, keyed "<name>.<index>" (per ranker group etc).
  std::uint64_t& counter(std::string_view name, std::uint32_t index);
  /// Counter excluded from the default snapshot: its value may depend on
  /// the thread-pool size or on benign claim races.
  std::uint64_t& counter_unstable(std::string_view name);

  double& gauge(std::string_view name);
  double& gauge(std::string_view name, std::uint32_t index);

  util::Log2Histogram& log2_histogram(std::string_view name);
  /// Get-or-create; throws std::invalid_argument if `name` already exists
  /// with different (lo, hi, bins).
  util::LinearHistogram& linear_histogram(std::string_view name, double lo, double hi,
                                          std::size_t bins);

  /// Read-only lookups for tests/reporting: value or 0/0.0 if absent.
  [[nodiscard]] std::uint64_t counter_value(std::string_view name) const;
  [[nodiscard]] double gauge_value(std::string_view name) const;

  /// Sorted-key JSON snapshot. Doubles print with max_digits10 precision
  /// in the classic locale, so equal doubles produce equal bytes.
  void write_json(std::ostream& out, bool include_unstable = false) const;
  [[nodiscard]] std::string snapshot(bool include_unstable = false) const;

 private:
  struct LinearSpec {
    double lo;
    double hi;
    std::size_t bins;
    util::LinearHistogram hist;
  };

  // Transparent comparator: lookups by string_view without allocating.
  template <typename T>
  using Map = std::map<std::string, T, std::less<>>;

  Map<std::uint64_t> counters_ P2P_EXTERNALLY_SYNCHRONIZED;
  Map<std::uint64_t> unstable_counters_ P2P_EXTERNALLY_SYNCHRONIZED;
  Map<double> gauges_ P2P_EXTERNALLY_SYNCHRONIZED;
  Map<util::Log2Histogram> log2_ P2P_EXTERNALLY_SYNCHRONIZED;
  Map<LinearSpec> linear_ P2P_EXTERNALLY_SYNCHRONIZED;
};

/// Export fork-join tallies into `m` after a join: the pool-size-independent
/// family (calls, indices, fixed grains) as regular counters, the
/// pool-dependent family (dispatches, worker claims) as unstable counters
/// excluded from the default snapshot. Sets, not adds — call once when the
/// run finishes. Pool stats count from pool *construction*; when the pool
/// outlives the measured run (the shared pool, back-to-back determinism
/// runs), export the interval instead: snapshot stats() at run start and
/// pass `pool.stats() - before`.
void export_pool_metrics(const util::ThreadPool::Stats& stats, MetricsRegistry& m);
void export_pool_metrics(const util::ThreadPool& pool, MetricsRegistry& m);

}  // namespace p2prank::obs
