// Virtual-time event tracer: spans and instants keyed to sim::EventQueue
// time, exported as Chrome/Perfetto trace-event JSON (chrome://tracing,
// https://ui.perfetto.dev). Part of the observability contract
// (DESIGN.md §11): timestamps are simulation time only — never wall
// clock — so a trace is a pure function of (scenario, seed) and two runs
// of the same seed produce byte-identical traces.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "util/thread_annotations.hpp"

namespace p2prank::obs {

/// Schema tag stamped into the trace's otherData block.
inline constexpr std::string_view kTraceSchema = "p2prank-trace-v1";

class Tracer {
 public:
  /// `max_events` bounds memory; events past the cap are counted in
  /// dropped() and not recorded (the cap is part of the determinism
  /// contract: it depends only on the event sequence, never on timing).
  explicit Tracer(std::size_t max_events = 1u << 20);

  /// Point event at virtual time `t`. `name` must be a names::k* constant;
  /// `detail` is free-form (shown as args.detail), `value` a numeric
  /// payload (args.value), `tid` the logical lane (ranker group id).
  void instant(std::string_view name, double t, std::uint32_t tid = 0,
               std::string_view detail = {}, double value = 0.0);

  /// Complete span [t_begin, t_begin + duration] on lane `tid` — e.g. a
  /// message's flight from send to delivery.
  void complete(std::string_view name, double t_begin, double duration,
                std::uint32_t tid = 0, std::string_view detail = {},
                double value = 0.0);

  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

  /// Chrome trace-event JSON ("traceEvents" array, ts/dur in microseconds
  /// of virtual time). Deterministic: events appear in record order, and
  /// the simulation's event loop is deterministic.
  void write_chrome_json(std::ostream& out) const;

 private:
  struct Event {
    std::string name;
    std::string detail;
    double t;
    double dur;  // <0 for instants
    double value;
    std::uint32_t tid;
  };

  std::size_t max_events_;
  std::uint64_t dropped_ P2P_EXTERNALLY_SYNCHRONIZED = 0;
  std::vector<Event> events_ P2P_EXTERNALLY_SYNCHRONIZED;
};

}  // namespace p2prank::obs
