// Centralized reference computations the experiments compare against:
//   * the open-system fixed point R* on the whole crawl ("centralized
//     PageRank performed on all the page groups", Section 5) — the target
//     distributed ranking must converge to;
//   * CPR iteration counts for the Fig. 8 comparison.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/web_graph.hpp"
#include "util/thread_pool.hpp"

namespace p2prank::engine {

/// Solve R = A·R + βE (E = 1) over the full crawl to (at least) `epsilon`.
/// Throws if it fails to converge within max_iterations.
[[nodiscard]] std::vector<double> open_system_reference(const graph::WebGraph& g,
                                                        double alpha,
                                                        util::ThreadPool& pool,
                                                        double epsilon = 1e-12,
                                                        std::size_t max_iterations = 2000);

/// Personalized variant: solve R = A·R + βE with a caller-supplied per-page
/// E (Section 3's non-uniform E). `e` must have one entry per page.
[[nodiscard]] std::vector<double> open_system_reference_personalized(
    const graph::WebGraph& g, double alpha, std::span<const double> e,
    util::ThreadPool& pool, double epsilon = 1e-12,
    std::size_t max_iterations = 2000);

/// Number of iterations the centralized open-system power iteration needs,
/// starting from R = 0, until ||R_i - R*|| / ||R*|| <= threshold. This is
/// the "CPR" series of Fig. 8 (whose iteration count is independent of the
/// number of page rankers).
[[nodiscard]] std::size_t centralized_iterations_to_error(
    const graph::WebGraph& g, double alpha, double threshold,
    std::span<const double> reference, util::ThreadPool& pool,
    std::size_t max_iterations = 2000);

/// Map ranks computed on one crawl snapshot onto another: pages present in
/// both (matched by URL) keep their rank; pages new to `to` start at 0 (the
/// theorems' safe initial value). Feed the result to
/// DistributedRanking::warm_start after a re-crawl.
[[nodiscard]] std::vector<double> carry_ranks(const graph::WebGraph& from,
                                              std::span<const double> from_ranks,
                                              const graph::WebGraph& to);

/// Iterations classic *closed-system* PageRank (Algorithm 1, damping c,
/// renormalizing E reinjection) needs to get within `threshold` relative
/// error of its own fixed point. This is what the paper's Fig. 8 labels
/// "CPR": the Google-style algorithm, which keeps total rank mass at 1 and
/// therefore contracts at ~c per step — slower than the open system, whose
/// external leak shrinks the effective contraction. That gap is exactly why
/// the paper observes DPR1 needing fewer iterations than CPR.
[[nodiscard]] std::size_t algorithm1_iterations_to_error(
    const graph::WebGraph& g, double damping, double threshold,
    util::ThreadPool& pool, std::size_t max_iterations = 2000);

}  // namespace p2prank::engine
