// Rank-state checkpointing.
//
// An exchange round costs hours at web scale (Table 1), so a deployment
// must survive ranker restarts without starting over. A checkpoint is a
// plain text stream of "url rank" lines; loading matches by URL, so the
// state survives crawl growth and re-partitioning — pages that vanished are
// skipped, new pages start at 0 (the theorems' safe initial value). Feed
// the loaded vector to DistributedRanking::warm_start.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "graph/web_graph.hpp"

namespace p2prank::engine {

/// Write "url rank" per page (full double precision).
void save_ranks(const graph::WebGraph& g, std::span<const double> ranks,
                std::ostream& out);
void save_ranks_file(const graph::WebGraph& g, std::span<const double> ranks,
                     const std::string& path);

struct LoadedRanks {
  std::vector<double> ranks;   ///< aligned to g's pages; unmatched = 0
  std::size_t matched = 0;     ///< checkpoint lines applied
  std::size_t skipped = 0;     ///< checkpoint lines whose URL is gone
};

/// Parse a checkpoint against the (possibly different) current graph.
/// Throws std::runtime_error on malformed lines, non-finite or negative
/// ranks, and files whose entry count disagrees with the v1 header's
/// declared count (a save truncated by a crash mid-write).
[[nodiscard]] LoadedRanks load_ranks(const graph::WebGraph& g, std::istream& in);
[[nodiscard]] LoadedRanks load_ranks_file(const graph::WebGraph& g,
                                          const std::string& path);

}  // namespace p2prank::engine
