// The distributed page-ranking simulation: K page rankers (PageGroups)
// running DPR1 or DPR2 asynchronously over a lossy message channel, driven
// by a discrete-event queue (the experiment apparatus of Section 5).
//
// Each ranker's loop step is one event: drain the inbox ("Refresh X"),
// compute R (to convergence for DPR1, one sweep for DPR2), compute and send
// a Y slice to every group it has cut edges into (each send independently
// survives with probability p), then reschedule after an exponential wait.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "engine/engine_types.hpp"
#include "engine/page_group.hpp"
#include "graph/web_graph.hpp"
#include "sim/event_queue.hpp"
#include "sim/processes.hpp"
#include "util/thread_pool.hpp"

namespace p2prank::engine {

class DistributedRanking {
 public:
  /// `assignment[p]` = group of page p, values in [0, k). Groups may be
  /// empty (they then simply never run). The graph must outlive this object.
  DistributedRanking(const graph::WebGraph& g,
                     std::span<const std::uint32_t> assignment, std::uint32_t k,
                     const EngineOptions& opts, util::ThreadPool& pool);

  /// Reference ranks R* for the relative-error metric (normally
  /// open_system_reference(...)). Required before run()/run_until_error().
  void set_reference(std::vector<double> reference);

  /// Seed every group's rank vector from a global vector (one entry per
  /// page). Used after a link-graph change: build a fresh engine on the
  /// mutated graph and warm-start it from the previous run's global_ranks()
  /// — convergence resumes from there instead of from zero. Call before
  /// run(); with the theorems' R0 = 0 premise gone, monotonicity may not
  /// hold (exactly the paper's Section 4.3 caveat), but convergence does.
  void warm_start(std::span<const double> global_ranks);

  /// Suspend a ranker: it stops looping until resume_group (the paper's
  /// "sleep for some time, suspend itself as its wish, or even shutdown").
  /// Its last Y values stay in force at its peers. Defined edge cases:
  /// pausing is level-triggered and idempotent (a second pause_group is a
  /// no-op, and one resume_group wakes the group regardless of how many
  /// pauses preceded it); pausing an empty group is allowed and harmless;
  /// an out-of-range group throws std::out_of_range.
  void pause_group(std::uint32_t group);
  /// Wake a suspended ranker; it reschedules from the current time. A
  /// resume of a group that is not paused is a no-op (never double-
  /// schedules); resuming an empty group marks it unpaused but schedules
  /// nothing.
  void resume_group(std::uint32_t group);
  [[nodiscard]] bool is_paused(std::uint32_t group) const;

  /// Crash a ranker: all its in-memory state (R, X, delta baselines) and
  /// queued inbox messages are lost; it keeps running from scratch. Peers
  /// hold its last Y values until it sends again, and re-deliver theirs on
  /// their next loop steps, so the group re-converges. Note that global
  /// monotonicity (Thm 4.1) does NOT survive a crash: the rebooted ranker's
  /// next Y is computed from its reset ranks and *replaces* the higher
  /// pre-crash entries in peers' X, so peers' ranks can legitimately dip
  /// before re-converging. Combine with pause/resume for a crash +
  /// downtime, or warm_start-from-checkpoint for recovery.
  /// Defined edge cases: crashing a *paused* group wipes its state but
  /// leaves it paused — it reboots into standby and only runs again after
  /// resume_group; crashing an empty group is a no-op; repeated crashes are
  /// idempotent; messages already in flight (sent pre-crash with a delivery
  /// delay) still arrive afterwards — the network does not lose them just
  /// because the receiver rebooted (they are idempotent X patches); an
  /// out-of-range group throws std::out_of_range.
  void crash_group(std::uint32_t group);

  /// Change the Y-message delivery probability from now on (chaos-harness
  /// loss bursts). In-flight messages are unaffected; the loss RNG stream
  /// keeps consuming one draw per send, so the same seed keeps losing the
  /// same send indices across probability levels.
  void set_delivery_probability(double p) { loss_.set_probability(p); }
  [[nodiscard]] double delivery_probability() const noexcept {
    return loss_.delivery_probability();
  }

  /// Advance virtual time to t_end, recording a Sample every
  /// `sample_interval` time units (Fig. 6 / Fig. 7 series). May be called
  /// repeatedly; time continues where it left off.
  [[nodiscard]] std::vector<Sample> run(double t_end, double sample_interval = 1.0);

  /// Advance until the relative error vs the reference drops to
  /// `threshold`, checking every `check_interval` units, giving up at
  /// max_time (Fig. 8 measurement).
  [[nodiscard]] ConvergenceResult run_until_error(double threshold, double max_time,
                                                  double check_interval = 1.0);

  /// Assemble the global rank vector from all groups' local vectors.
  [[nodiscard]] std::vector<double> global_ranks() const;

  [[nodiscard]] double relative_error_now() const;

  [[nodiscard]] std::uint32_t num_groups() const noexcept {
    return static_cast<std::uint32_t>(groups_.size());
  }
  [[nodiscard]] const PageGroup& group(std::uint32_t i) const { return *groups_.at(i); }
  [[nodiscard]] std::uint32_t nonempty_groups() const noexcept { return nonempty_; }
  [[nodiscard]] std::uint64_t messages_sent() const noexcept { return messages_sent_; }
  [[nodiscard]] std::uint64_t messages_lost() const noexcept { return messages_lost_; }
  [[nodiscard]] std::uint64_t records_sent() const noexcept { return records_sent_; }
  /// Σ records × overlay hops, the D_it = h·l·W quantity (full-stack mode
  /// only; 0 with the abstract channel).
  [[nodiscard]] std::uint64_t record_hops() const noexcept { return record_hops_; }
  [[nodiscard]] sim::SimTime now() const noexcept { return queue_.now(); }

  /// Total outer loop steps executed across all groups.
  [[nodiscard]] std::uint64_t total_outer_steps() const noexcept;
  /// Mean outer steps per non-empty group.
  [[nodiscard]] double mean_outer_steps() const noexcept;
  /// Total inner Jacobi sweeps across all groups (DPR1's hidden cost; for
  /// DPR2 this equals total_outer_steps()).
  [[nodiscard]] std::uint64_t total_inner_sweeps() const noexcept {
    return inner_sweeps_;
  }

  /// Per-group diagnostics: loop steps and wire records emitted by each
  /// group so far (straggler/hot-spot analysis).
  [[nodiscard]] std::vector<std::uint64_t> outer_steps_per_group() const;
  [[nodiscard]] std::span<const std::uint64_t> records_sent_per_group() const noexcept {
    return records_per_group_;
  }

  /// Termination detection results (opts.stability_epsilon > 0 only).
  [[nodiscard]] bool termination_detected() const noexcept {
    return termination_time_ >= 0.0;
  }
  /// Virtual time at which the coordinator first saw every group stable
  /// (-1 when not (yet) detected).
  [[nodiscard]] double termination_time() const noexcept {
    return termination_time_;
  }
  [[nodiscard]] std::uint64_t status_messages() const noexcept {
    return status_messages_;
  }

 private:
  void schedule_step(std::uint32_t group);
  void run_step(std::uint32_t group);

  const graph::WebGraph& graph_;
  EngineOptions opts_;
  util::ThreadPool& pool_;
  std::vector<std::unique_ptr<PageGroup>> groups_;
  std::vector<std::vector<std::pair<std::uint32_t, YSlice>>> inbox_;
  sim::EventQueue queue_;
  sim::WaitProcess waits_;
  sim::LossModel loss_;
  std::vector<double> reference_;
  std::vector<double> prev_sample_ranks_;
  std::vector<char> paused_;
  std::uint32_t nonempty_ = 0;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t messages_lost_ = 0;
  std::uint64_t records_sent_ = 0;
  std::uint64_t inner_sweeps_ = 0;
  std::vector<std::uint64_t> records_per_group_;

  // Termination detection (stability_epsilon > 0): per-group latest
  // stability flag as seen by the coordinator, plus scratch for measuring a
  // step's rank change.
  std::vector<char> stable_flag_;
  std::uint32_t stable_count_ = 0;
  double termination_time_ = -1.0;
  std::uint64_t status_messages_ = 0;
  std::vector<double> step_scratch_;

  // Full-stack mode: cached overlay hop counts per (src group, dst group).
  std::unordered_map<std::uint64_t, std::uint32_t> hop_cache_;
  std::uint64_t record_hops_ = 0;

  [[nodiscard]] double delivery_delay(std::uint32_t src, std::uint32_t dst);

  /// Floor on sampled waits: a group whose drawn mean is ~0 would otherwise
  /// flood virtual time with events. (The paper's discrete-time simulation
  /// has an implicit floor of one time unit; ours is finer.)
  static constexpr double kMinWait = 0.1;
};

}  // namespace p2prank::engine
