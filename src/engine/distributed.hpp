// The distributed page-ranking simulation: K page rankers (PageGroups)
// running DPR1 or DPR2 asynchronously over a lossy message channel, driven
// by a discrete-event queue (the experiment apparatus of Section 5).
//
// Each ranker's loop step is one event: drain the inbox ("Refresh X"),
// compute R (to convergence for DPR1, one sweep for DPR2), compute and send
// a Y slice to every group it has cut edges into (each send independently
// survives with probability p), then reschedule after an exponential wait.
//
// On top of the paper's fire-and-forget channel the engine can run the
// reliable exchange layer (EngineOptions::reliability, src/transport/
// reliable.hpp): epoch-stamped Y slices so jitter-reordered stale slices
// are rejected instead of clobbering newer X entries, ack/retransmit with
// exponential backoff for lossy channels, and suspicion-based failure
// detection with optional graceful decay of a dead peer's contribution.
// Ranker churn (leave_group / join_group) hands pages between rankers
// through the checkpoint state-transfer path while in-flight slices from
// the old wiring are dropped via a churn generation stamp.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "engine/engine_types.hpp"
#include "engine/page_group.hpp"
#include "graph/web_graph.hpp"
#include "sim/event_queue.hpp"
#include "sim/processes.hpp"
#include "transport/fault_plane.hpp"
#include "transport/frame.hpp"
#include "transport/reliable.hpp"
#include "util/histogram.hpp"
#include "util/rng.hpp"
#include "util/thread_annotations.hpp"
#include "util/thread_pool.hpp"

namespace p2prank::engine {

class DistributedRanking {
 public:
  /// `assignment[p]` = group of page p, values in [0, k). Groups may be
  /// empty (they then simply never run). The graph must outlive this
  /// object. Throws std::invalid_argument with a field-naming message for
  /// invalid EngineOptions (negative latencies/jitter/backoff,
  /// delivery_probability outside [0,1], overlay smaller than k, ...).
  DistributedRanking(const graph::WebGraph& g,
                     std::span<const std::uint32_t> assignment, std::uint32_t k,
                     const EngineOptions& opts, util::ThreadPool& pool);

  /// Reference ranks R* for the relative-error metric (normally
  /// open_system_reference(...)). Required before run()/run_until_error().
  void set_reference(std::vector<double> reference);

  /// Seed every group's rank vector from a global vector (one entry per
  /// page). Used after a link-graph change: build a fresh engine on the
  /// mutated graph and warm-start it from the previous run's global_ranks()
  /// — convergence resumes from there instead of from zero. Call before
  /// run(); with the theorems' R0 = 0 premise gone, monotonicity may not
  /// hold (exactly the paper's Section 4.3 caveat), but convergence does.
  void warm_start(std::span<const double> global_ranks);

  /// Every group's exported worklist frontier, indexed by group. Captured
  /// on the engine being retired, installed into its successor by
  /// warm_start_incremental.
  struct WorklistCarrySet {
    std::vector<PageGroup::WorklistCarry> groups;
  };

  /// Snapshot all groups' worklist frontiers for an incremental graph swap.
  /// Groups without an exportable frontier contribute invalid entries (the
  /// successor falls back to a dense warm start for those groups only).
  [[nodiscard]] WorklistCarrySet export_worklist_carry() const;

  /// warm_start for a *link-only* graph splice (graph::apply_updates_delta
  /// with incremental == true): seeds ranks like warm_start, but also
  /// installs the predecessor engine's worklist frontiers so converged rows
  /// stay skipped instead of the whole web re-sweeping densely.
  /// `changed_rows` / `changed_sources` are the delta's in_changed /
  /// degree_changed page lists; they re-seed exactly the affected frontier
  /// rows. Precondition: identical membership and assignment as the engine
  /// that exported `carry` (the chaos runner guards this); with a mismatched
  /// carry every group falls back to the dense path, so the call degrades to
  /// plain warm_start. At worklist ε = 0 the resulting rank trajectory is
  /// bitwise-identical to rebuild-then-warm_start (DESIGN.md §14, locked by
  /// test).
  void warm_start_incremental(std::span<const double> global_ranks,
                              WorklistCarrySet carry,
                              std::span<const graph::PageId> changed_rows,
                              std::span<const graph::PageId> changed_sources);

  /// Suspend a ranker: it stops looping until resume_group (the paper's
  /// "sleep for some time, suspend itself as its wish, or even shutdown").
  /// Its last Y values stay in force at its peers. Defined edge cases:
  /// pausing is level-triggered and idempotent (a second pause_group is a
  /// no-op, and one resume_group wakes the group regardless of how many
  /// pauses preceded it); pausing an empty group is allowed and harmless;
  /// an out-of-range group throws std::out_of_range. A paused ranker's
  /// transport stack stays up: deliveries are still accepted into its inbox
  /// and acked — only the application loop sleeps.
  void pause_group(std::uint32_t group);
  /// Wake a suspended ranker; it reschedules from the current time. A
  /// resume of a group that is not paused is a no-op (never double-
  /// schedules); resuming an empty group marks it unpaused but schedules
  /// nothing.
  void resume_group(std::uint32_t group);
  [[nodiscard]] bool is_paused(std::uint32_t group) const;

  /// Crash a ranker: all its in-memory state (R, X, delta baselines) and
  /// queued inbox messages are lost; it keeps running from scratch. Peers
  /// hold its last Y values until it sends again, and re-deliver theirs on
  /// their next loop steps, so the group re-converges. Note that global
  /// monotonicity (Thm 4.1) does NOT survive a crash: the rebooted ranker's
  /// next Y is computed from its reset ranks and *replaces* the higher
  /// pre-crash entries in peers' X, so peers' ranks can legitimately dip
  /// before re-converging. Combine with pause/resume for a crash +
  /// downtime, or warm_start-from-checkpoint for recovery.
  /// Defined edge cases: crashing a *paused* group wipes its state but
  /// leaves it paused — it reboots into standby and only runs again after
  /// resume_group; crashing an empty group is a no-op; repeated crashes are
  /// idempotent; messages already in flight (sent pre-crash with a delivery
  /// delay) still arrive afterwards — the network does not lose them just
  /// because the receiver rebooted (they are idempotent X patches); an
  /// out-of-range group throws std::out_of_range. With the reliable layer
  /// on, the crashed sender's retransmit buffers are wiped with the rest of
  /// its memory, but per-pair epochs are transport-session state and
  /// survive — peers keep rejecting stale slices and keep retransmitting
  /// *to* the crashed ranker until it acks again.
  void crash_group(std::uint32_t group);

  /// Ranker churn: `group` departs the overlay, handing every page it owns
  /// to `successor` through the checkpoint state-transfer path (the rank
  /// state round-trips through the text format, exactly what a real
  /// handoff would ship). Peers re-route subsequent Y slices via the
  /// rebuilt cut-edge wiring; slices still in flight against the old
  /// wiring are dropped by a churn generation stamp (their sender will
  /// retransmit / re-send against the new wiring). Rank values are
  /// preserved exactly, so a consistent (sub-fixed-point) state stays
  /// consistent: Thm 4.1/4.2 hold across a leave. Throws
  /// std::out_of_range / std::invalid_argument on bad indices, departing
  /// an empty group, or successor == group.
  void leave_group(std::uint32_t group, std::uint32_t successor);

  /// Drop every message currently in flight (undelivered Y slices, buffered
  /// retransmit payloads) without touching rank state. A crash deliberately
  /// keeps in-flight messages alive — the network does not lose them just
  /// because a receiver rebooted — but a checkpoint *restore* is a global
  /// rollback: slices sent from the rolled-back timeline would leak
  /// higher-than-restored Y values into peers' X, only to be deflated by
  /// the first post-restore send (a rank dip the monotone checker rightly
  /// rejects). The chaos runner calls this between the crash wave and the
  /// warm_start of a restore. Per-pair epochs survive (transport-session
  /// state, like crash and churn).
  void drop_in_flight();

  /// Ranker churn: an empty `group` joins the overlay and takes the upper
  /// half of `donor`'s pages (donor keeps at least one). Same state
  /// transfer and generation rules as leave_group. Throws on bad indices,
  /// a non-empty joining group, or a donor with fewer than two pages.
  void join_group(std::uint32_t group, std::uint32_t donor);

  /// Completed leave/join operations.
  [[nodiscard]] std::uint64_t churn_events() const noexcept { return churn_events_; }

  /// Current page -> group ownership map (exactly one owner per page).
  [[nodiscard]] std::vector<std::uint32_t> current_assignment() const;

  /// Change the Y-message delivery probability from now on (chaos-harness
  /// loss bursts). In-flight messages are unaffected; the loss RNG stream
  /// keeps consuming one draw per send, so the same seed keeps losing the
  /// same send indices across probability levels.
  void set_delivery_probability(double p) { loss_.set_probability(p); }
  [[nodiscard]] double delivery_probability() const noexcept {
    return loss_.delivery_probability();
  }

  /// Change the ack-channel delivery probability (reliable mode; no effect
  /// otherwise). Chaos-harness ack-loss bursts.
  void set_ack_delivery_probability(double p) { ack_loss_.set_probability(p); }

  /// Change the per-message delivery-latency jitter from now on (reorder
  /// bursts). Must be >= 0.
  void set_latency_jitter(double jitter);
  [[nodiscard]] double latency_jitter() const noexcept { return latency_jitter_; }

  // --- Fault plane: partitions + frame corruption (DESIGN.md §13) ----------
  /// Install a network cut: groups in `side_a_mask` form side A; messages
  /// crossing A→B / B→A are delivered with the given probabilities (0 =
  /// hard cut). One cut is active at a time; a new call replaces it. The
  /// plane draws from its own RNG only while a cut is active, so runs that
  /// never partition are bit-identical to the pre-fault-plane engine.
  void set_partition(std::uint64_t side_a_mask, double deliver_ab,
                     double deliver_ba) {
    fault_plane_.set_partition(side_a_mask, deliver_ab, deliver_ba);
  }
  void heal_partition() { fault_plane_.heal(); }
  [[nodiscard]] bool partition_active() const noexcept {
    return fault_plane_.partitioned();
  }
  /// Per-frame byte-corruption probability. While > 0 every Y slice
  /// round-trips through the checksummed frame codec at delivery; corrupted
  /// frames are quarantined (counted, never applied, never acked).
  void set_corruption(double probability) {
    fault_plane_.set_corruption(probability);
  }
  /// Deterministic link probe (no RNG draw): false only while a hard
  /// directed cut (delivery probability 0) separates src from dst. The
  /// RecoverySupervisor's heal detector.
  [[nodiscard]] bool probe_link(std::uint32_t src, std::uint32_t dst) const {
    return fault_plane_.link_up(src, dst);
  }
  /// Whether the reliable layer currently suspects dst from src's
  /// viewpoint (false in fire-and-forget mode).
  [[nodiscard]] bool suspected(std::uint32_t src, std::uint32_t dst) const {
    return reliable_ ? reliable_->suspected(src, dst) : false;
  }
  /// Whether src has cut edges into dst (i.e. sends it Y slices).
  [[nodiscard]] bool has_cut_edges(std::uint32_t src, std::uint32_t dst) const;
  /// Messages dropped by the active cut (also counted in messages_lost).
  [[nodiscard]] std::uint64_t partition_drops() const noexcept {
    return fault_plane_.partition_drops();
  }
  /// Frames the fault plane corrupted in flight.
  [[nodiscard]] std::uint64_t frames_corrupted() const noexcept {
    return fault_plane_.frames_corrupted();
  }
  /// Corrupted/garbage frames rejected by the codec at delivery.
  [[nodiscard]] std::uint64_t frames_quarantined() const noexcept {
    return frames_quarantined_;
  }
  /// Corrupted frames that survived validation and were applied — a
  /// checksum collision, impossible in practice; the invariant checker
  /// asserts this stays 0.
  [[nodiscard]] std::uint64_t corrupt_frames_applied() const noexcept {
    return corrupt_frames_applied_;
  }
  /// Slices rejected by the NaN/Inf/negative/order guard at refresh time
  /// (defense in depth behind the codec; must stay 0 in simulation).
  [[nodiscard]] std::uint64_t slices_rejected() const noexcept {
    return slices_rejected_;
  }

  /// Advance virtual time to t_end, recording a Sample every
  /// `sample_interval` time units (Fig. 6 / Fig. 7 series). May be called
  /// repeatedly; time continues where it left off.
  [[nodiscard]] std::vector<Sample> run(double t_end, double sample_interval = 1.0);

  /// Advance until the relative error vs the reference drops to
  /// `threshold`, checking every `check_interval` units, giving up at
  /// max_time (Fig. 8 measurement).
  [[nodiscard]] ConvergenceResult run_until_error(double threshold, double max_time,
                                                  double check_interval = 1.0);

  /// Assemble the global rank vector from all groups' local vectors.
  [[nodiscard]] std::vector<double> global_ranks() const;

  [[nodiscard]] double relative_error_now() const;

  [[nodiscard]] std::uint32_t num_groups() const noexcept {
    return static_cast<std::uint32_t>(groups_.size());
  }
  [[nodiscard]] const PageGroup& group(std::uint32_t i) const { return *groups_.at(i); }
  [[nodiscard]] std::uint32_t nonempty_groups() const noexcept { return nonempty_; }
  [[nodiscard]] std::uint64_t messages_sent() const noexcept { return messages_sent_; }
  [[nodiscard]] std::uint64_t messages_lost() const noexcept { return messages_lost_; }
  /// Fresh Y-slice records only — the paper's W (and the W inside §4.5's
  /// D_dt/D_it). Retransmitted copies of a buffered slice are accounted in
  /// retransmit_records(), never here: a retransmit re-ships bytes, it does
  /// not create new logical records, and counting it here would inflate the
  /// cost model exactly when the channel is lossy.
  [[nodiscard]] std::uint64_t records_sent() const noexcept { return records_sent_; }
  /// Records re-shipped by the reliable layer's retransmit timers (0 with
  /// fire-and-forget). Overhead traffic, kept apart from records_sent().
  [[nodiscard]] std::uint64_t retransmit_records() const noexcept {
    return retransmit_records_;
  }
  /// Σ records × overlay hops, the D_it = h·l·W quantity (full-stack mode
  /// only; 0 with the abstract channel).
  [[nodiscard]] std::uint64_t record_hops() const noexcept { return record_hops_; }
  [[nodiscard]] sim::SimTime now() const noexcept { return queue_.now(); }

  // --- Reliable-exchange diagnostics (all 0 with fire-and-forget) ----------
  /// Re-sends of an unacked epoch (each is also counted in messages_sent).
  [[nodiscard]] std::uint64_t retransmissions() const noexcept {
    return retransmissions_;
  }
  [[nodiscard]] std::uint64_t acks_sent() const noexcept { return acks_sent_; }
  [[nodiscard]] std::uint64_t acks_delivered() const noexcept {
    return acks_delivered_;
  }
  /// Stale (reordered or already-delivered) slices rejected by the epoch
  /// filter at the receiver.
  [[nodiscard]] std::uint64_t duplicates_rejected() const noexcept {
    return reliable_ ? reliable_->duplicates_rejected() : 0;
  }
  /// Retransmit timers that fired for an already-acked epoch — impossible
  /// by construction; the invariant checker asserts this stays 0.
  [[nodiscard]] std::uint64_t zombie_retransmits() const noexcept {
    return reliable_ ? reliable_->zombie_retransmits() : 0;
  }
  [[nodiscard]] std::uint64_t suspicion_events() const noexcept {
    return reliable_ ? reliable_->suspicion_events() : 0;
  }
  [[nodiscard]] std::uint32_t suspected_pairs() const noexcept {
    return reliable_ ? reliable_->suspected_pairs() : 0;
  }
  /// Pairs currently holding an unacked buffered slice.
  [[nodiscard]] std::uint64_t pending_retransmits() const noexcept {
    return pending_payload_.size();
  }
  /// Receiver-side epoch high-water mark for (src, dst); non-decreasing
  /// for the lifetime of the engine (epochs survive crash and churn).
  [[nodiscard]] std::uint64_t accepted_epoch(std::uint32_t src,
                                             std::uint32_t dst) const noexcept {
    return reliable_ ? reliable_->accepted_epoch(src, dst) : 0;
  }

  /// Total outer loop steps executed across all groups (including steps by
  /// rankers that have since departed in churn).
  [[nodiscard]] std::uint64_t total_outer_steps() const noexcept;
  /// Mean outer steps per non-empty group.
  [[nodiscard]] double mean_outer_steps() const noexcept;
  /// Total inner Jacobi sweeps across all groups (DPR1's hidden cost; for
  /// DPR2 this equals total_outer_steps()).
  [[nodiscard]] std::uint64_t total_inner_sweeps() const noexcept {
    return inner_sweeps_;
  }

  /// Per-group diagnostics: loop steps and wire records emitted by each
  /// group so far (straggler/hot-spot analysis).
  [[nodiscard]] std::vector<std::uint64_t> outer_steps_per_group() const;
  [[nodiscard]] std::span<const std::uint64_t> records_sent_per_group() const noexcept {
    return records_per_group_;
  }

  /// Termination detection results (opts.stability_epsilon > 0 only).
  [[nodiscard]] bool termination_detected() const noexcept {
    return termination_time_ >= 0.0;
  }
  /// Virtual time at which the coordinator first saw every group stable
  /// (-1 when not (yet) detected).
  [[nodiscard]] double termination_time() const noexcept {
    return termination_time_;
  }
  [[nodiscard]] std::uint64_t status_messages() const noexcept {
    return status_messages_;
  }

 private:
  struct InboxMessage {
    std::uint32_t source = 0;
    YSlice slice;
  };

  static EngineOptions validated(EngineOptions opts);
  void build_groups(std::span<const std::uint32_t> assignment);
  void schedule_step(std::uint32_t group);
  void run_step(std::uint32_t group);
  void init_obs();
  /// Push the current (ranks, ownership) into opts_.snapshot_sink (no-op
  /// without one) and restart the publish-cadence clock.
  void publish_snapshot();

  // Reliable-exchange plumbing.
  void send_slice(std::uint32_t src, std::uint32_t dst, YSlice slice);
  void deliver(std::uint32_t src, std::uint32_t dst, transport::Epoch epoch,
               YSlice slice);
  void schedule_retransmit(std::uint32_t src, std::uint32_t dst,
                           transport::Epoch epoch);
  void on_retransmit_timer(std::uint32_t src, std::uint32_t dst,
                           transport::Epoch epoch);
  void apply_churn(std::span<const std::uint32_t> assignment);
  /// Corruption round-trip at delivery: encode the slice as a wire frame,
  /// let the fault plane maybe flip bytes, decode + validate. Returns false
  /// (slice untouched) when the frame was quarantined. No-op pass-through
  /// while corruption is disabled.
  [[nodiscard]] bool frame_survives(std::uint32_t src, std::uint32_t dst,
                                    transport::Epoch epoch, YSlice& slice);

  [[nodiscard]] static std::uint64_t pair_key(std::uint32_t src,
                                              std::uint32_t dst) noexcept {
    return (static_cast<std::uint64_t>(src) << 32) | dst;
  }

  // Thread-confinement contract (DESIGN.md §9): the engine runs on one
  // simulation thread. The only concurrency is inside PageGroup's rank
  // kernels, which hand `pool_` disjoint index ranges and never touch the
  // members below; P2P_EXTERNALLY_SYNCHRONIZED marks the state whose
  // mutation from a pool worker would be a data race.
  const graph::WebGraph& graph_;
  EngineOptions opts_;
  util::ThreadPool& pool_;
  std::vector<std::unique_ptr<PageGroup>> groups_ P2P_EXTERNALLY_SYNCHRONIZED;
  std::vector<std::vector<InboxMessage>> inbox_ P2P_EXTERNALLY_SYNCHRONIZED;
  sim::EventQueue queue_ P2P_EXTERNALLY_SYNCHRONIZED;
  sim::WaitProcess waits_ P2P_EXTERNALLY_SYNCHRONIZED;
  sim::LossModel loss_ P2P_EXTERNALLY_SYNCHRONIZED;
  sim::LossModel ack_loss_ P2P_EXTERNALLY_SYNCHRONIZED;
  transport::FaultPlane fault_plane_ P2P_EXTERNALLY_SYNCHRONIZED;
  util::Rng jitter_rng_ P2P_EXTERNALLY_SYNCHRONIZED;
  double latency_jitter_ = 0.0;
  std::optional<transport::ReliableExchange> reliable_ P2P_EXTERNALLY_SYNCHRONIZED;
  /// Buffered newest unacked slice per (src, dst) — shared with in-flight
  /// delivery events so retransmits do not copy the payload.
  std::unordered_map<std::uint64_t, std::shared_ptr<const YSlice>> pending_payload_
      P2P_EXTERNALLY_SYNCHRONIZED;
  /// Wiring generation: bumped by churn; deliveries stamped with an older
  /// generation carry dest-local indices of dead wiring and are dropped.
  std::uint64_t generation_ = 0;
  std::vector<double> reference_;
  std::vector<double> prev_sample_ranks_;
  std::vector<char> paused_;
  /// Whether a loop-step event is pending for the group (prevents double
  /// scheduling across resume/churn).
  std::vector<char> active_;
  std::uint32_t nonempty_ = 0;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t messages_lost_ = 0;
  std::uint64_t records_sent_ = 0;
  std::uint64_t retransmit_records_ = 0;
  std::uint64_t inner_sweeps_ = 0;
  std::uint64_t retransmissions_ = 0;
  std::uint64_t acks_sent_ = 0;
  std::uint64_t acks_delivered_ = 0;
  std::uint64_t churn_events_ = 0;
  std::uint64_t frames_quarantined_ = 0;
  std::uint64_t corrupt_frames_applied_ = 0;
  std::uint64_t slices_rejected_ = 0;
  /// Outer steps performed by group objects retired in churn rebuilds.
  std::uint64_t retired_outer_steps_ = 0;
  std::vector<std::uint64_t> records_per_group_;

  // Termination detection (stability_epsilon > 0): per-group latest
  // stability flag as seen by the coordinator, plus scratch for measuring a
  // step's rank change.
  std::vector<char> stable_flag_;
  std::uint32_t stable_count_ = 0;
  double termination_time_ = -1.0;
  /// Next virtual time at which a loop step publishes into snapshot_sink.
  double next_snapshot_ = 0.0;
  /// Per-group view array for publish_snapshot(), reused across publishes
  /// so the per-outer-iteration publish path allocates nothing.
  std::vector<GroupCut> snapshot_cuts_;
  /// Bumped by build_groups() on every membership change; handed to the
  /// snapshot sink so it can keep ownership-derived state across publishes.
  std::uint64_t ownership_version_ = 0;
  std::uint64_t status_messages_ = 0;
  std::vector<double> step_scratch_;

  // Full-stack mode: cached overlay hop counts per (src group, dst group).
  std::unordered_map<std::uint64_t, std::uint32_t> hop_cache_;
  std::uint64_t record_hops_ = 0;

  // Observability hooks (EngineOptions::metrics/tracer; DESIGN.md §11).
  // Registry cells are resolved once at construction — std::map nodes are
  // stable — so the hot path pays one null check + increment per metric.
  // All-null when metrics is off.
  struct ObsHooks {
    std::uint64_t* outer_steps = nullptr;
    std::uint64_t* inner_sweeps = nullptr;
    std::uint64_t* messages_sent = nullptr;
    std::uint64_t* messages_lost = nullptr;
    std::uint64_t* deliveries = nullptr;
    std::uint64_t* records_sent = nullptr;
    std::uint64_t* record_hops = nullptr;
    std::uint64_t* churn_events = nullptr;
    std::uint64_t* retransmissions = nullptr;
    std::uint64_t* retransmit_records = nullptr;
    std::uint64_t* acks_sent = nullptr;
    std::uint64_t* acks_delivered = nullptr;
    std::uint64_t* duplicates_rejected = nullptr;
    std::uint64_t* suspicions = nullptr;
    std::uint64_t* partition_drops = nullptr;
    std::uint64_t* frames_quarantined = nullptr;
    double* data_bytes = nullptr;
    double* retransmit_bytes = nullptr;
    util::Log2Histogram* slice_records = nullptr;
    util::Log2Histogram* inner_iterations = nullptr;
    util::LinearHistogram* step_residual = nullptr;
    std::vector<std::uint64_t*> group_outer_steps;
    std::vector<double*> group_residual;
  };
  ObsHooks obs_ P2P_EXTERNALLY_SYNCHRONIZED;

  [[nodiscard]] double delivery_delay(std::uint32_t src, std::uint32_t dst);

  /// Floor on sampled waits: a group whose drawn mean is ~0 would otherwise
  /// flood virtual time with events. (The paper's discrete-time simulation
  /// has an implicit floor of one time unit; ours is finer.)
  static constexpr double kMinWait = 0.1;
};

}  // namespace p2prank::engine
