#include "engine/page_group.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "rank/open_system.hpp"

namespace p2prank::engine {

PageGroup::PageGroup(const graph::WebGraph& g, std::vector<graph::PageId> members,
                     double alpha, std::span<const double> e_local)
    : members_(std::move(members)),
      matrix_(rank::LinkMatrix::from_subset(g, members_, alpha)) {
  assert(std::is_sorted(members_.begin(), members_.end()));
  if (!e_local.empty() && e_local.size() != members_.size()) {
    throw std::invalid_argument("PageGroup: e_local size mismatch");
  }
  const double beta = rank::beta_of(alpha);
  beta_e_.resize(members_.size());
  for (std::size_t i = 0; i < members_.size(); ++i) {
    beta_e_[i] = beta * (e_local.empty() ? 1.0 : e_local[i]);
  }
  ranks_.assign(members_.size(), 0.0);  // R0 = 0 (the proofs' S = 0)
  x_.assign(members_.size(), 0.0);
  forcing_ = beta_e_;
  scratch_.assign(members_.size(), 0.0);
}

void PageGroup::configure_worklist(const rank::WorklistOptions& opts) {
  worklist_enabled_ = true;
  wl_opts_ = opts;
  wl_state_.reset();
}

void PageGroup::set_ranks(std::span<const double> ranks) {
  if (ranks.size() != ranks_.size()) {
    throw std::invalid_argument("PageGroup::set_ranks: size mismatch");
  }
  ranks_.assign(ranks.begin(), ranks.end());
  // R changed out of band (warm start / checkpoint restore): every frontier
  // assumption is stale, so the next sweep must run dense.
  wl_state_.reset();
}

void PageGroup::reset_state() {
  std::fill(ranks_.begin(), ranks_.end(), 0.0);
  std::fill(x_.begin(), x_.end(), 0.0);
  forcing_ = beta_e_;
  last_sweep_delta_ = 0.0;
  wl_state_.reset();
  received_.clear();
  for (auto& block : blocks_) {
    std::fill(block.last_sent.begin(), block.last_sent.end(),
              std::numeric_limits<double>::quiet_NaN());
  }
}

void PageGroup::add_efferent_edge(std::uint32_t dest_group, std::uint32_t dest_local,
                                  std::uint32_t src_local, double weight) {
  assert(!finalized_);
  assert(src_local < members_.size());
  // Blocks arrive grouped in practice; linear search from the back is fine
  // during wiring.
  auto it = std::find_if(blocks_.begin(), blocks_.end(), [&](const EfferentBlock& b) {
    return b.dest_group == dest_group;
  });
  if (it == blocks_.end()) {
    EfferentBlock block;
    block.dest_group = dest_group;
    blocks_.push_back(std::move(block));
    it = std::prev(blocks_.end());
  }
  it->dst_local.push_back(dest_local);
  it->src_local.push_back(src_local);
  it->weight.push_back(weight);
}

void PageGroup::finalize_efferents() {
  assert(!finalized_);
  std::sort(blocks_.begin(), blocks_.end(),
            [](const EfferentBlock& a, const EfferentBlock& b) {
              return a.dest_group < b.dest_group;
            });
  for (auto& block : blocks_) {
    // Sort edges by destination page so compute_y can merge runs.
    std::vector<std::uint32_t> order(block.dst_local.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
      return block.dst_local[a] < block.dst_local[b];
    });
    EfferentBlock sorted;
    sorted.dest_group = block.dest_group;
    sorted.dst_local.reserve(order.size());
    sorted.src_local.reserve(order.size());
    sorted.weight.reserve(order.size());
    for (const std::uint32_t i : order) {
      sorted.dst_local.push_back(block.dst_local[i]);
      sorted.src_local.push_back(block.src_local[i]);
      sorted.weight.push_back(block.weight[i]);
    }
    for (std::size_t i = 0; i < sorted.dst_local.size(); ++i) {
      if (sorted.unique_dst.empty() || sorted.unique_dst.back() != sorted.dst_local[i]) {
        sorted.unique_dst.push_back(sorted.dst_local[i]);
      }
    }
    sorted.last_sent.assign(sorted.unique_dst.size(),
                            std::numeric_limits<double>::quiet_NaN());
    block = std::move(sorted);
  }
  efferent_dests_.clear();
  efferent_dests_.reserve(blocks_.size());
  for (const auto& b : blocks_) efferent_dests_.push_back(b.dest_group);
  finalized_ = true;
}

const PageGroup::EfferentBlock* PageGroup::find_block(std::uint32_t dest_group) const {
  const auto it = std::lower_bound(
      blocks_.begin(), blocks_.end(), dest_group,
      [](const EfferentBlock& b, std::uint32_t d) { return b.dest_group < d; });
  if (it == blocks_.end() || it->dest_group != dest_group) return nullptr;
  return &*it;
}

PageGroup::EfferentBlock* PageGroup::find_block(std::uint32_t dest_group) {
  return const_cast<EfferentBlock*>(
      static_cast<const PageGroup*>(this)->find_block(dest_group));
}

void PageGroup::refresh_x(std::uint32_t source_group, const YSlice& slice) {
  // X(v) = Σ over (source group, page) of the latest received contribution.
  // Maintain the dense sum incrementally: each incoming entry supersedes
  // the stored value for its (source, page) pair.
  auto& stored = received_[source_group];
  for (const auto& [local, value] : slice.entries) {
    assert(local < x_.size());
    double& slot = stored.try_emplace(local, 0.0).first->second;
    const double delta = value - slot;
    x_[local] += delta;
    forcing_[local] += delta;
    slot = value;
    // A bitwise-unchanged forcing slot (delta exactly 0) cannot change the
    // row's next value, so only real changes wake the row.
    if (worklist_enabled_ && delta != 0.0) wl_state_.mark_forcing_dirty(local);
  }
}

void PageGroup::scale_received(std::uint32_t source_group, double factor) {
  if (!(factor >= 0.0 && factor <= 1.0)) {
    throw std::invalid_argument("PageGroup::scale_received: factor out of [0,1]");
  }
  const auto it = received_.find(source_group);
  if (it == received_.end()) return;  // never heard from that peer
  // p2plint: allow(no-unordered-iteration): distinct keys write distinct
  // x_/forcing_ slots, so the per-entry updates commute bitwise.
  for (auto& [local, value] : it->second) {
    const double decayed = value * factor;
    const double delta = decayed - value;
    x_[local] += delta;
    forcing_[local] += delta;
    value = decayed;
    if (worklist_enabled_ && delta != 0.0) wl_state_.mark_forcing_dirty(local);
  }
}

PageGroup::WorklistCarry PageGroup::export_worklist_carry() const {
  WorklistCarry carry;
  if (!worklist_enabled_ || !wl_state_.primed) return carry;
  // The differ bitmap is a statement about this exact buffer pair; if the
  // state talks about some other pair the frontier is not exportable.
  const bool pair_ok =
      (wl_state_.pair_a == ranks_.data() && wl_state_.pair_b == scratch_.data()) ||
      (wl_state_.pair_a == scratch_.data() && wl_state_.pair_b == ranks_.data());
  if (!pair_ok) return carry;
  carry.valid = true;
  carry.contrib = wl_state_.contrib;
  carry.differ = wl_state_.differ;
  return carry;
}

bool PageGroup::install_worklist_carry(
    std::span<const double> ranks, WorklistCarry carry,
    std::span<const std::uint32_t> changed_rows_local,
    std::span<const std::uint32_t> changed_sources_local) {
  const std::size_t dim = members_.size();
  const std::size_t words = (dim + 63) / 64;
  // The frontier argument (DESIGN.md §14) needs exact mode: with ε > 0 the
  // carried contribs embed sub-epsilon drift relative to a fresh prime, so
  // the bitwise contract with rebuild-then-warm-start would not hold.
  if (!worklist_enabled_ || wl_opts_.epsilon != 0.0 || !carry.valid ||
      carry.contrib.size() != dim || carry.differ.size() != words) {
    set_ranks(ranks);
    return false;
  }
  ranks_.assign(ranks.begin(), ranks.end());
  scratch_.assign(ranks.begin(), ranks.end());
  wl_state_.contrib = std::move(carry.contrib);
  wl_state_.differ = std::move(carry.differ);
  // Pre-size every derived bitmap exactly as the kernel's own prime does,
  // so the next sweep's sizing check keeps the installed frontier.
  wl_state_.dirty.assign(words, 0);
  wl_state_.src_active.assign(words, 0);
  wl_state_.forcing_dirty.assign(words, 0);
  wl_state_.grain_edges.assign(
      util::ThreadPool::num_grains(dim, matrix_.sweep_grain()), 0);
  wl_state_.active_grains.clear();
  wl_state_.primed = true;
  wl_state_.sweeps_since_dense = 0;
  wl_state_.pair_a = ranks_.data();
  wl_state_.pair_b = scratch_.data();
  // Sources whose 1/d(u) weight changed: their propagated contribution is
  // stale, so the next sweep's rescan phase must revisit them.
  for (const std::uint32_t row : changed_sources_local) {
    assert(row < dim);
    wl_state_.differ[row >> 6] |= std::uint64_t{1} << (row & 63);
  }
  // Rows whose in-neighborhood changed recompute against the new matrix.
  for (const std::uint32_t row : changed_rows_local) {
    assert(row < dim);
    wl_state_.mark_forcing_dirty(row);
  }
  return true;
}

void PageGroup::mark_all_received_dirty() {
  if (!worklist_enabled_) return;
  // p2plint: allow(no-unordered-iteration): setting forcing-dirty bits is
  // idempotent and commutative, so visit order cannot affect state.
  for (const auto& [source, entries] : received_) {
    (void)source;
    for (const auto& [local, value] : entries) {
      (void)value;
      wl_state_.mark_forcing_dirty(local);
    }
  }
}

std::size_t PageGroup::solve_to_convergence(double epsilon,
                                            std::size_t max_iterations,
                                            util::ThreadPool& pool) {
  if (worklist_enabled_) {
    // Iterate in place on the persistent ranks_/scratch_ pair so the
    // frontier survives across outer steps: after the first solve, later
    // solves only touch rows reached from refreshed forcing entries. Same
    // convergence gating as solve_open_system_worklist.
    std::size_t iterations = 0;
    bool confirm = false;
    for (std::size_t it = 0; it < max_iterations; ++it) {
      const rank::WorklistSweepStats stats = matrix_.sweep_and_residual_worklist(
          ranks_, scratch_, forcing_, sweep_scratch_, wl_state_, wl_opts_, pool,
          /*force_dense=*/confirm);
      std::swap(ranks_, scratch_);
      ++iterations;
      if (stats.l1_delta <= epsilon) {
        if (stats.dense || wl_opts_.epsilon == 0.0) break;
        confirm = true;
      } else {
        confirm = false;
      }
    }
    return iterations;
  }
  rank::SolveOptions opts;
  opts.alpha = matrix_.alpha();
  opts.epsilon = epsilon;
  opts.max_iterations = max_iterations;
  auto result = rank::solve_open_system(matrix_, forcing_, ranks_, opts, pool);
  ranks_ = std::move(result.ranks);
  return result.iterations;
}

void PageGroup::sweep_once(util::ThreadPool& pool) {
  if (worklist_enabled_) {
    last_sweep_delta_ =
        matrix_
            .sweep_and_residual_worklist(ranks_, scratch_, forcing_,
                                         sweep_scratch_, wl_state_, wl_opts_, pool)
            .l1_delta;
  } else {
    last_sweep_delta_ =
        rank::open_system_sweep(matrix_, ranks_, scratch_, forcing_, sweep_scratch_, pool)
            .l1_delta;
  }
  std::swap(ranks_, scratch_);
}

YSlice PageGroup::compute_y(std::uint32_t dest_group, double threshold) const {
  const EfferentBlock* block = find_block(dest_group);
  if (block == nullptr) {
    throw std::invalid_argument("PageGroup::compute_y: no edges to that group");
  }
  YSlice slice;
  slice.entries.reserve(block->unique_dst.size());
  // Edges are sorted by destination page: accumulate runs; run index u
  // tracks the position in unique_dst / last_sent.
  std::size_t i = 0;
  std::size_t u = 0;
  while (i < block->dst_local.size()) {
    const std::uint32_t dst = block->dst_local[i];
    double acc = 0.0;
    std::uint64_t edges = 0;
    for (; i < block->dst_local.size() && block->dst_local[i] == dst; ++i) {
      acc += ranks_[block->src_local[i]] * block->weight[i];
      ++edges;
    }
    assert(block->unique_dst[u] == dst);
    const double last = block->last_sent[u];
    ++u;
    // Include when never sent, or moved at least `threshold` since the last
    // committed send.
    if (std::isnan(last) || std::fabs(acc - last) >= threshold ||
        threshold <= 0.0) {
      slice.entries.emplace_back(dst, acc);
      slice.record_count += edges;
    }
  }
  return slice;
}

void PageGroup::commit_sent(std::uint32_t dest_group, const YSlice& slice) {
  EfferentBlock* block = find_block(dest_group);
  if (block == nullptr) {
    throw std::invalid_argument("PageGroup::commit_sent: no edges to that group");
  }
  // Both unique_dst and slice entries are ascending: merge.
  std::size_t u = 0;
  for (const auto& [dst, value] : slice.entries) {
    while (u < block->unique_dst.size() && block->unique_dst[u] < dst) ++u;
    assert(u < block->unique_dst.size() && block->unique_dst[u] == dst);
    block->last_sent[u] = value;
  }
}

}  // namespace p2prank::engine
