#include "engine/reference.hpp"

#include <stdexcept>

#include "rank/centralized.hpp"
#include "rank/link_matrix.hpp"
#include "rank/open_system.hpp"
#include "util/stats.hpp"

namespace p2prank::engine {

std::vector<double> open_system_reference(const graph::WebGraph& g, double alpha,
                                          util::ThreadPool& pool, double epsilon,
                                          std::size_t max_iterations) {
  const auto matrix = rank::LinkMatrix::from_graph(g, alpha);
  rank::SolveOptions opts;
  opts.alpha = alpha;
  opts.epsilon = epsilon;
  opts.max_iterations = max_iterations;
  auto result = rank::solve_open_system_uniform(matrix, 1.0, opts, pool);
  if (!result.converged) {
    throw std::runtime_error("open_system_reference: did not converge");
  }
  return std::move(result.ranks);
}

std::vector<double> open_system_reference_personalized(const graph::WebGraph& g,
                                                       double alpha,
                                                       std::span<const double> e,
                                                       util::ThreadPool& pool,
                                                       double epsilon,
                                                       std::size_t max_iterations) {
  if (e.size() != g.num_pages()) {
    throw std::invalid_argument("open_system_reference_personalized: E size");
  }
  const auto matrix = rank::LinkMatrix::from_graph(g, alpha);
  std::vector<double> forcing(e.size());
  const double beta = rank::beta_of(alpha);
  for (std::size_t i = 0; i < e.size(); ++i) {
    if (e[i] < 0.0) {
      throw std::invalid_argument("open_system_reference_personalized: E < 0");
    }
    forcing[i] = beta * e[i];
  }
  rank::SolveOptions opts;
  opts.alpha = alpha;
  opts.epsilon = epsilon;
  opts.max_iterations = max_iterations;
  auto result = rank::solve_open_system(matrix, forcing, {}, opts, pool);
  if (!result.converged) {
    throw std::runtime_error("open_system_reference_personalized: did not converge");
  }
  return std::move(result.ranks);
}

std::size_t centralized_iterations_to_error(const graph::WebGraph& g, double alpha,
                                            double threshold,
                                            std::span<const double> reference,
                                            util::ThreadPool& pool,
                                            std::size_t max_iterations) {
  if (reference.size() != g.num_pages()) {
    throw std::invalid_argument("centralized_iterations_to_error: reference size");
  }
  const auto matrix = rank::LinkMatrix::from_graph(g, alpha);
  const std::vector<double> forcing(matrix.dimension(),
                                    rank::beta_of(alpha) * 1.0);
  std::vector<double> ranks(matrix.dimension(), 0.0);
  std::vector<double> next(matrix.dimension(), 0.0);
  rank::SweepScratch scratch;
  const double ref_norm = util::l1_norm(reference);

  for (std::size_t it = 1; it <= max_iterations; ++it) {
    (void)rank::open_system_sweep(matrix, ranks, next, forcing, scratch, pool);
    std::swap(ranks, next);
    if (util::l1_distance(ranks, reference) <= threshold * ref_norm) return it;
  }
  throw std::runtime_error(
      "centralized_iterations_to_error: threshold not reached within budget");
}

std::vector<double> carry_ranks(const graph::WebGraph& from,
                                std::span<const double> from_ranks,
                                const graph::WebGraph& to) {
  if (from_ranks.size() != from.num_pages()) {
    throw std::invalid_argument("carry_ranks: rank vector size mismatch");
  }
  std::vector<double> out(to.num_pages(), 0.0);
  for (graph::PageId p = 0; p < to.num_pages(); ++p) {
    if (const auto old = from.find(to.url(p))) out[p] = from_ranks[*old];
  }
  return out;
}

std::size_t algorithm1_iterations_to_error(const graph::WebGraph& g, double damping,
                                           double threshold, util::ThreadPool& pool,
                                           std::size_t max_iterations) {
  rank::CentralizedOptions opts;
  opts.damping = damping;
  opts.epsilon = 1e-14;
  opts.max_iterations = max_iterations;
  const auto fixed = rank::centralized_pagerank(g, opts, pool);
  if (!fixed.converged) {
    throw std::runtime_error("algorithm1_iterations_to_error: no fixed point");
  }
  const double ref_norm = util::l1_norm(fixed.ranks);

  std::size_t needed = 0;
  bool reached = false;
  opts.on_iteration = [&](std::span<const double> iterate) {
    ++needed;
    if (util::l1_distance(iterate, fixed.ranks) <= threshold * ref_norm) {
      reached = true;
      return false;  // stop
    }
    return true;
  };
  (void)rank::centralized_pagerank(g, opts, pool);
  if (!reached) {
    throw std::runtime_error(
        "algorithm1_iterations_to_error: threshold not reached within budget");
  }
  return needed;
}

}  // namespace p2prank::engine
