#include "engine/checkpoint.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>
#include <string_view>

namespace p2prank::engine {

void save_ranks(const graph::WebGraph& g, std::span<const double> ranks,
                std::ostream& out) {
  if (ranks.size() != g.num_pages()) {
    throw std::invalid_argument("save_ranks: rank vector size mismatch");
  }
  out << "# p2prank checkpoint v1: " << g.num_pages() << " pages\n";
  out << std::setprecision(17);
  for (graph::PageId p = 0; p < g.num_pages(); ++p) {
    out << g.url(p) << ' ' << ranks[p] << '\n';
  }
}

void save_ranks_file(const graph::WebGraph& g, std::span<const double> ranks,
                     const std::string& path) {
  // Write-then-rename so a crash mid-save can never leave a truncated file
  // at `path`: readers see either the old checkpoint or the complete new
  // one. rename(2) is atomic within a filesystem and the temp file lives
  // next to the target, so it cannot cross a mount boundary.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) throw std::runtime_error("save_ranks_file: cannot open " + tmp);
    save_ranks(g, ranks, out);
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      throw std::runtime_error("save_ranks_file: write failed for " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("save_ranks_file: cannot rename " + tmp + " to " +
                             path);
  }
}

LoadedRanks load_ranks(const graph::WebGraph& g, std::istream& in) {
  LoadedRanks loaded;
  loaded.ranks.assign(g.num_pages(), 0.0);
  std::string line;
  std::size_t line_no = 0;
  std::size_t entries = 0;
  std::size_t expected = 0;  // 0 = no v1 header seen (plain "url rank" file)
  constexpr std::string_view kHeader = "# p2prank checkpoint v1: ";
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') {
      // The v1 header declares the entry count; remember it so a file cut
      // off mid-write (crash during save) is rejected instead of silently
      // warm-starting half the crawl from zero.
      if (line.rfind(kHeader, 0) == 0) {
        std::istringstream count(line.substr(kHeader.size()));
        count >> expected;
      }
      continue;
    }
    std::istringstream fields(line);
    std::string url;
    double rank = 0.0;
    std::string extra;
    if (!(fields >> url >> rank) || (fields >> extra)) {
      throw std::runtime_error("load_ranks: malformed line " +
                               std::to_string(line_no));
    }
    if (!std::isfinite(rank) || rank < 0.0) {
      throw std::runtime_error("load_ranks: corrupt rank on line " +
                               std::to_string(line_no) +
                               " (must be finite and non-negative)");
    }
    ++entries;
    if (const auto p = g.find(url)) {
      loaded.ranks[*p] = rank;
      ++loaded.matched;
    } else {
      ++loaded.skipped;
    }
  }
  if (expected != 0 && entries != expected) {
    throw std::runtime_error(
        "load_ranks: truncated checkpoint: header declares " +
        std::to_string(expected) + " entries, found " + std::to_string(entries));
  }
  return loaded;
}

LoadedRanks load_ranks_file(const graph::WebGraph& g, const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_ranks_file: cannot open " + path);
  return load_ranks(g, in);
}

}  // namespace p2prank::engine
