#include "engine/distributed.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "engine/checkpoint.hpp"
#include "obs/metric_names.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "transport/exchange.hpp"
#include "util/stats.hpp"

namespace p2prank::engine {

namespace {

/// Wire cost of one Y-slice message under the §4.5 format (40-byte
/// envelope + ~100 bytes per <url_from, url_to, score> record). The
/// engine ships record *counts*, not payloads; this prices them.
[[nodiscard]] double slice_wire_bytes(std::uint64_t records) {
  constexpr transport::WireFormat kWire{};
  return kWire.header_bytes + static_cast<double>(records) * kWire.record_bytes;
}

}  // namespace

EngineOptions DistributedRanking::validated(EngineOptions o) {
  // Field-naming messages: a chaos harness (or a config file) that produces
  // a bad option should learn *which* knob is bad, not just that one is.
  //
  // Every EngineOptions/ReliabilityOptions field must be registered here —
  // either with a range check or, when any value is valid, with an explicit
  // note. tools/p2plint (rule `engine-options-registry`) fails the build
  // when a new field is added without a decision in this function.
  //
  // Unconstrained fields:
  //   algorithm                — every enumerator is a valid algorithm
  //   overlay                  — nullptr = abstract channel; the constructor
  //                              checks num_nodes() >= k for non-null
  //   seed                     — any 64-bit seed
  //   fault_skip_refresh_group — any index; UINT32_MAX (default) = off, an
  //                              out-of-range index hits no group
  //   metrics                  — nullptr (default) = metrics off; any
  //                              registry, must outlive the engine
  //   tracer                   — nullptr (default) = tracing off; any
  //                              tracer, must outlive the engine
  //   snapshot_sink            — nullptr (default) = serving off; any sink,
  //                              must outlive the engine (DESIGN.md §12)
  if (!(o.alpha > 0.0 && o.alpha < 1.0)) {
    throw std::invalid_argument("EngineOptions.alpha: must be in (0,1)");
  }
  if (!(o.inner_epsilon > 0.0)) {
    throw std::invalid_argument("EngineOptions.inner_epsilon: must be > 0");
  }
  if (o.inner_max_iterations == 0) {
    throw std::invalid_argument("EngineOptions.inner_max_iterations: must be >= 1");
  }
  for (const double e : o.personalization) {
    if (!(e >= 0.0) || !std::isfinite(e)) {
      throw std::invalid_argument(
          "EngineOptions.personalization: entries must be >= 0 and finite");
    }
  }
  if (!(o.delivery_probability >= 0.0 && o.delivery_probability <= 1.0)) {
    throw std::invalid_argument(
        "EngineOptions.delivery_probability: must be in [0,1]");
  }
  if (!(o.t1 >= 0.0)) {
    throw std::invalid_argument("EngineOptions.t1: must be >= 0");
  }
  if (!(o.t2 >= o.t1)) {
    throw std::invalid_argument("EngineOptions.t2: must be >= t1");
  }
  if (!(o.delivery_latency >= 0.0)) {
    throw std::invalid_argument("EngineOptions.delivery_latency: must be >= 0");
  }
  if (!(o.latency_jitter >= 0.0)) {
    throw std::invalid_argument("EngineOptions.latency_jitter: must be >= 0");
  }
  if (!(o.per_hop_latency >= 0.0)) {
    throw std::invalid_argument("EngineOptions.per_hop_latency: must be >= 0");
  }
  if (!(o.stability_epsilon >= 0.0)) {
    throw std::invalid_argument("EngineOptions.stability_epsilon: must be >= 0");
  }
  if (!(o.send_threshold >= 0.0)) {
    throw std::invalid_argument("EngineOptions.send_threshold: must be >= 0");
  }
  if (!(o.snapshot_interval > 0.0) || !std::isfinite(o.snapshot_interval)) {
    throw std::invalid_argument(
        "EngineOptions.snapshot_interval: must be > 0 and finite");
  }
  // worklist — both values valid: false keeps the dense kernels, true
  // routes local iteration through the frontier kernel (DESIGN.md §6).
  if (!(o.worklist_epsilon >= 0.0) || !std::isfinite(o.worklist_epsilon)) {
    throw std::invalid_argument(
        "EngineOptions.worklist_epsilon: must be >= 0 and finite");
  }
  if (o.worklist && o.worklist_epsilon > 0.0 && o.worklist_full_interval == 0) {
    throw std::invalid_argument(
        "EngineOptions.worklist_full_interval: must be >= 1 when "
        "worklist_epsilon > 0 (periodic dense sweeps bound the drift)");
  }
  auto& r = o.reliability;
  if (r.retransmit) r.epochs = true;  // retransmission needs the dup filter
  if (!(r.ack_latency >= 0.0)) {
    throw std::invalid_argument(
        "EngineOptions.reliability.ack_latency: must be >= 0");
  }
  if (!(r.ack_delivery_probability <= 1.0)) {
    throw std::invalid_argument(
        "EngineOptions.reliability.ack_delivery_probability: must be <= 1 "
        "(negative mirrors delivery_probability)");
  }
  if (!(r.rto_initial > 0.0)) {
    throw std::invalid_argument(
        "EngineOptions.reliability.rto_initial: must be > 0");
  }
  if (!(r.rto_backoff >= 1.0)) {
    throw std::invalid_argument(
        "EngineOptions.reliability.rto_backoff: must be >= 1");
  }
  if (!(r.rto_max >= r.rto_initial)) {
    throw std::invalid_argument(
        "EngineOptions.reliability.rto_max: must be >= rto_initial");
  }
  if (!(r.rto_jitter >= 0.0)) {
    throw std::invalid_argument(
        "EngineOptions.reliability.rto_jitter: must be >= 0");
  }
  if (r.suspicion_after == 0) {
    throw std::invalid_argument(
        "EngineOptions.reliability.suspicion_after: must be >= 1");
  }
  if (!(r.suspect_decay >= 0.0 && r.suspect_decay <= 1.0)) {
    throw std::invalid_argument(
        "EngineOptions.reliability.suspect_decay: must be in [0,1]");
  }
  return o;
}

DistributedRanking::DistributedRanking(const graph::WebGraph& g,
                                       std::span<const std::uint32_t> assignment,
                                       std::uint32_t k, const EngineOptions& opts,
                                       util::ThreadPool& pool)
    : graph_(g),
      opts_(validated(opts)),
      pool_(pool),
      inbox_(k),
      waits_(opts_.t1, opts_.t2, k, opts_.seed ^ 0x5851f42d4c957f2dULL),
      loss_(opts_.delivery_probability, opts_.seed ^ 0x14057b7ef767814fULL),
      ack_loss_(opts_.reliability.ack_delivery_probability < 0.0
                    ? opts_.delivery_probability
                    : opts_.reliability.ack_delivery_probability,
                opts_.seed ^ 0x9e3779b97f4a7c15ULL),
      fault_plane_(opts_.seed ^ 0x94d049bb133111ebULL),
      jitter_rng_(opts_.seed ^ 0xd1b54a32d192ed03ULL),
      latency_jitter_(opts_.latency_jitter) {
  if (assignment.size() != g.num_pages()) {
    throw std::invalid_argument("DistributedRanking: assignment size mismatch");
  }
  if (k == 0) throw std::invalid_argument("DistributedRanking: k == 0");
  if (!opts_.personalization.empty() &&
      opts_.personalization.size() != g.num_pages()) {
    throw std::invalid_argument("EngineOptions.personalization: size mismatch");
  }
  if (opts_.overlay != nullptr && opts_.overlay->num_nodes() < k) {
    throw std::invalid_argument(
        "EngineOptions.overlay: fewer overlay nodes than the k ranker groups");
  }
  if (opts_.reliability.epochs) {
    transport::ReliableOptions ro;
    ro.rto_initial = opts_.reliability.rto_initial;
    ro.rto_backoff = opts_.reliability.rto_backoff;
    ro.rto_max = opts_.reliability.rto_max;
    ro.rto_jitter = opts_.reliability.rto_jitter;
    ro.suspicion_after = opts_.reliability.suspicion_after;
    reliable_.emplace(ro, opts_.seed ^ 0x2545f4914f6cdd1dULL);
  }

  build_groups(assignment);
  init_obs();

  // --- Kick off every non-empty ranker --------------------------------------
  stable_flag_.assign(k, 0);
  paused_.assign(k, 0);
  active_.assign(k, 0);
  records_per_group_.assign(k, 0);
  for (std::uint32_t grp = 0; grp < k; ++grp) {
    if (groups_[grp]->size() > 0) schedule_step(grp);
  }

  // Serving is live from t = 0: the all-zero cold-start state is the true
  // current state, and publishing it means a reader never finds the store
  // empty once the engine exists (a warm_start republishes immediately).
  publish_snapshot();
}

void DistributedRanking::init_obs() {
  obs::MetricsRegistry* m = opts_.metrics;
  if (m == nullptr) return;
  namespace names = obs::names;
  obs_.outer_steps = &m->counter(names::kEngineOuterSteps);
  obs_.inner_sweeps = &m->counter(names::kEngineInnerSweeps);
  obs_.messages_sent = &m->counter(names::kEngineMessagesSent);
  obs_.messages_lost = &m->counter(names::kEngineMessagesLost);
  obs_.deliveries = &m->counter(names::kEngineDeliveries);
  obs_.records_sent = &m->counter(names::kEngineRecordsSent);
  obs_.record_hops = &m->counter(names::kEngineRecordHops);
  obs_.churn_events = &m->counter(names::kEngineChurnEvents);
  obs_.retransmissions = &m->counter(names::kTransportRetransmissions);
  obs_.retransmit_records = &m->counter(names::kTransportRetransmitRecords);
  obs_.acks_sent = &m->counter(names::kTransportAcksSent);
  obs_.acks_delivered = &m->counter(names::kTransportAcksDelivered);
  obs_.duplicates_rejected = &m->counter(names::kTransportDuplicatesRejected);
  obs_.suspicions = &m->counter(names::kTransportSuspicions);
  obs_.partition_drops = &m->counter(names::kTransportPartitionDrops);
  obs_.frames_quarantined = &m->counter(names::kTransportFramesQuarantined);
  obs_.data_bytes = &m->gauge(names::kEngineDataBytes);
  obs_.retransmit_bytes = &m->gauge(names::kTransportRetransmitBytes);
  obs_.slice_records = &m->log2_histogram(names::kEngineSliceRecords);
  obs_.inner_iterations = &m->log2_histogram(names::kEngineInnerIterations);
  // Residuals span ~[1, 1e-16] over a run; bin the log10 so late-
  // convergence structure is visible. -inf (a bit-identical step) clamps
  // into the first bin by the LinearHistogram contract.
  obs_.step_residual =
      &m->linear_histogram(names::kEngineStepResidualLog10, -18.0, 2.0, 40);
  const auto k = static_cast<std::uint32_t>(groups_.size());
  obs_.group_outer_steps.reserve(k);
  obs_.group_residual.reserve(k);
  for (std::uint32_t grp = 0; grp < k; ++grp) {
    obs_.group_outer_steps.push_back(&m->counter(names::kEngineGroupOuterSteps, grp));
    obs_.group_residual.push_back(&m->gauge(names::kEngineGroupResidual, grp));
  }
}

void DistributedRanking::build_groups(std::span<const std::uint32_t> assignment) {
  const auto k = static_cast<std::uint32_t>(inbox_.size());

  // --- Collect members per group -------------------------------------------
  std::vector<std::vector<graph::PageId>> members(k);
  for (graph::PageId p = 0; p < graph_.num_pages(); ++p) {
    if (assignment[p] >= k) {
      throw std::invalid_argument("DistributedRanking: assignment value >= k");
    }
    members[assignment[p]].push_back(p);  // ascending because p ascends
  }

  // Local index of every page within its group.
  std::vector<std::uint32_t> local_index(graph_.num_pages(), 0);
  for (std::uint32_t grp = 0; grp < k; ++grp) {
    for (std::uint32_t i = 0; i < members[grp].size(); ++i) {
      local_index[members[grp][i]] = i;
    }
  }

  groups_.clear();
  groups_.reserve(k);
  nonempty_ = 0;
  std::vector<double> e_local;
  for (std::uint32_t grp = 0; grp < k; ++grp) {
    if (!members[grp].empty()) ++nonempty_;
    e_local.clear();
    if (!opts_.personalization.empty()) {
      e_local.reserve(members[grp].size());
      for (const graph::PageId p : members[grp]) {
        e_local.push_back(opts_.personalization[p]);
      }
    }
    groups_.push_back(std::make_unique<PageGroup>(graph_, std::move(members[grp]),
                                                  opts_.alpha, e_local));
    if (opts_.worklist) {
      // Fresh groups start unprimed (first sweep dense), which is exactly
      // the frontier-reset rule for churn/graph-update rebuilds.
      rank::WorklistOptions wl;
      wl.epsilon = opts_.worklist_epsilon;
      wl.full_interval = opts_.worklist_full_interval;
      groups_.back()->configure_worklist(wl);
    }
  }

  // --- Wire efferent (cut) edges -------------------------------------------
  for (graph::PageId u = 0; u < graph_.num_pages(); ++u) {
    const std::uint32_t gu = assignment[u];
    const auto d = graph_.out_degree(u);
    if (d == 0) continue;
    const double weight = opts_.alpha / static_cast<double>(d);
    for (const graph::PageId v : graph_.out_links(u)) {
      const std::uint32_t gv = assignment[v];
      if (gv == gu) continue;
      groups_[gu]->add_efferent_edge(gv, local_index[v], local_index[u], weight);
    }
  }
  for (auto& grp : groups_) grp->finalize_efferents();

  // Every membership change funnels through here (construction, churn);
  // the bump tells snapshot sinks their cached page → shard maps are stale.
  ++ownership_version_;
}

void DistributedRanking::warm_start(std::span<const double> global_ranks) {
  if (global_ranks.size() != graph_.num_pages()) {
    throw std::invalid_argument("DistributedRanking: warm_start size mismatch");
  }
  std::vector<double> local;
  for (auto& grp : groups_) {
    const auto members = grp->members();
    local.clear();
    local.reserve(members.size());
    for (const graph::PageId p : members) local.push_back(global_ranks[p]);
    grp->set_ranks(local);
  }
  // Restore afferent state too: in a running deployment each ranker's X
  // survives a crawl update — it is received state, not recomputed. Prime
  // it by delivering every group's Y (computed from the warm ranks)
  // directly, outside the message accounting (and outside the epoch filter:
  // priming is state transfer, not a channel send). The chaos harness's
  // deliberately broken ranker skips priming like it skips its inbox — its
  // whole afferent-update path is dead, so churn and restore state
  // transfers must not silently heal it (the --broken self-test depends on
  // the fault surviving every recovery mechanism).
  for (std::uint32_t src = 0; src < groups_.size(); ++src) {
    for (const std::uint32_t dest : groups_[src]->efferent_destinations()) {
      if (dest == opts_.fault_skip_refresh_group) continue;
      groups_[dest]->refresh_x(src, groups_[src]->compute_y(dest));
    }
  }
  // A warm start changes the served state wholesale (initial seeding, churn
  // handoff, restore) — republish instead of waiting out the cadence.
  publish_snapshot();
}

DistributedRanking::WorklistCarrySet DistributedRanking::export_worklist_carry()
    const {
  WorklistCarrySet carry;
  carry.groups.reserve(groups_.size());
  for (const auto& grp : groups_) {
    carry.groups.push_back(grp->export_worklist_carry());
  }
  return carry;
}

void DistributedRanking::warm_start_incremental(
    std::span<const double> global_ranks, WorklistCarrySet carry,
    std::span<const graph::PageId> changed_rows,
    std::span<const graph::PageId> changed_sources) {
  if (global_ranks.size() != graph_.num_pages()) {
    throw std::invalid_argument(
        "DistributedRanking: warm_start_incremental size mismatch");
  }
  // A carry from an engine with a different group count cannot be aligned;
  // treat every group as fallback (degrades to warm_start semantics).
  const bool carry_usable = carry.groups.size() == groups_.size();

  // Bucket the delta's global page ids into per-group local row indices.
  const auto assignment = current_assignment();
  std::vector<std::vector<std::uint32_t>> rows_local(groups_.size());
  std::vector<std::vector<std::uint32_t>> sources_local(groups_.size());
  const auto bucket = [&](std::span<const graph::PageId> pages,
                          std::vector<std::vector<std::uint32_t>>& out) {
    for (const graph::PageId p : pages) {
      const std::uint32_t gi = assignment.at(p);
      const auto members = groups_[gi]->members();
      const auto it = std::lower_bound(members.begin(), members.end(), p);
      assert(it != members.end() && *it == p);
      out[gi].push_back(static_cast<std::uint32_t>(it - members.begin()));
    }
  };
  bucket(changed_rows, rows_local);
  bucket(changed_sources, sources_local);

  // Install ranks + frontier everywhere *before* re-priming X, so
  // refresh_x's forcing-dirty marks land on primed state.
  std::vector<double> local;
  for (std::uint32_t i = 0; i < groups_.size(); ++i) {
    const auto members = groups_[i]->members();
    local.clear();
    local.reserve(members.size());
    for (const graph::PageId p : members) local.push_back(global_ranks[p]);
    if (carry_usable) {
      groups_[i]->install_worklist_carry(local, std::move(carry.groups[i]),
                                         rows_local[i], sources_local[i]);
    } else {
      groups_[i]->set_ranks(local);
    }
  }
  // X re-prime: identical to warm_start (state transfer, not channel sends;
  // the deliberately broken ranker stays broken).
  for (std::uint32_t src = 0; src < groups_.size(); ++src) {
    for (const std::uint32_t dest : groups_[src]->efferent_destinations()) {
      if (dest == opts_.fault_skip_refresh_group) continue;
      groups_[dest]->refresh_x(src, groups_[src]->compute_y(dest));
    }
  }
  // Conservative frontier repair: every received X row recomputes next
  // sweep, covering entries the delta-based marks cannot see (bitwise-0.0
  // slice values superseding a nonzero pre-swap X).
  for (auto& grp : groups_) grp->mark_all_received_dirty();
  publish_snapshot();
}

void DistributedRanking::pause_group(std::uint32_t group) {
  paused_.at(group) = 1;
}

void DistributedRanking::resume_group(std::uint32_t group) {
  if (paused_.at(group) == 0) return;
  paused_[group] = 0;
  // Only schedule when no step event is already queued (a pause/resume
  // inside one wait interval must not double-clock the group).
  if (groups_[group]->size() > 0 && active_[group] == 0) schedule_step(group);
}

bool DistributedRanking::is_paused(std::uint32_t group) const {
  return paused_.at(group) != 0;
}

void DistributedRanking::crash_group(std::uint32_t group) {
  PageGroup& pg = *groups_.at(group);
  if (pg.size() == 0) return;  // nothing to lose, nothing scheduled
  pg.reset_state();
  inbox_[group].clear();
  if (reliable_) {
    // The crashed ranker's transmit buffers die with its memory; the
    // per-pair epochs are transport-session state and survive (peers keep
    // rejecting stale slices and keep retransmitting *to* it).
    reliable_->reset_sender(group);
    // p2plint: allow(no-unordered-iteration): predicate erase; no
    // accumulation, surviving entries are untouched.
    for (auto it = pending_payload_.begin(); it != pending_payload_.end();) {
      if (static_cast<std::uint32_t>(it->first >> 32) == group) {
        it = pending_payload_.erase(it);
      } else {
        ++it;
      }
    }
  }
  // A rebooted ranker starts unstable until it reports otherwise.
  if (stable_flag_[group] != 0) {
    stable_flag_[group] = 0;
    --stable_count_;
  }
  // Deliberately no (re)scheduling: a running group's next step is already
  // queued and simply finds empty state; a paused group stays paused until
  // resume_group (crash-while-down semantics).
}

std::vector<std::uint32_t> DistributedRanking::current_assignment() const {
  std::vector<std::uint32_t> assignment(graph_.num_pages(), UINT32_MAX);
  for (std::uint32_t grp = 0; grp < groups_.size(); ++grp) {
    for (const graph::PageId p : groups_[grp]->members()) assignment[p] = grp;
  }
  return assignment;
}

void DistributedRanking::drop_in_flight() {
  // The generation stamp kills undelivered slice events; the buffered
  // retransmit payloads and pending-epoch records go with them. Queued
  // inbox messages are already-delivered state and stay (a restore's crash
  // wave clears them anyway). Accepted-epoch high-water marks survive: the
  // channel session outlives a rollback just like it outlives a crash.
  ++generation_;
  pending_payload_.clear();
  if (reliable_) reliable_->reset_pending();
  // A restore is a global rollback for the serving layer too: every epoch
  // published from the rolled-back timeline is stale. The sink keeps
  // serving it (availability over freshness) until the restore's
  // warm_start republishes.
  if (opts_.snapshot_sink != nullptr) {
    opts_.snapshot_sink->invalidate(queue_.now());
  }
}

void DistributedRanking::apply_churn(std::span<const std::uint32_t> assignment) {
  // Hand the rank state through the checkpoint text format — the exact
  // state-transfer path a real ranker handoff would ship over the wire —
  // then rebuild the cut-edge wiring for the new ownership and warm-start.
  // The format stores full double precision, so a consistent
  // (sub-fixed-point) state round-trips exactly and Thm 4.1/4.2 survive.
  std::ostringstream text;
  save_ranks(graph_, global_ranks(), text);

  for (const auto& grp : groups_) retired_outer_steps_ += grp->outer_steps();
  build_groups(assignment);

  std::istringstream in(text.str());
  const LoadedRanks loaded = load_ranks(graph_, in);
  warm_start(loaded.ranks);

  // In-flight slices and retransmit timers reference the *old* wiring's
  // local indices: invalidate them wholesale via the generation stamp and
  // drop the buffered payloads. Epoch counters survive (transport-session
  // state), so "accepted epoch non-decreasing" holds across churn.
  ++generation_;
  pending_payload_.clear();
  if (reliable_) reliable_->reset_pending();
  for (auto& box : inbox_) box.clear();

  // Every ranker re-reports stability against the new ownership.
  std::fill(stable_flag_.begin(), stable_flag_.end(), 0);
  stable_count_ = 0;

  ++churn_events_;
  if (obs_.churn_events != nullptr) ++*obs_.churn_events;
  if (opts_.tracer != nullptr) {
    opts_.tracer->instant(obs::names::kTraceChurn, queue_.now());
  }
  for (std::uint32_t grp = 0; grp < groups_.size(); ++grp) {
    if (groups_[grp]->size() > 0 && paused_[grp] == 0 && active_[grp] == 0) {
      schedule_step(grp);
    }
  }
}

void DistributedRanking::leave_group(std::uint32_t group, std::uint32_t successor) {
  if (group >= groups_.size() || successor >= groups_.size()) {
    throw std::out_of_range("DistributedRanking::leave_group: group out of range");
  }
  if (successor == group) {
    throw std::invalid_argument(
        "DistributedRanking::leave_group: successor == departing group");
  }
  if (groups_[group]->size() == 0) {
    throw std::invalid_argument(
        "DistributedRanking::leave_group: departing group owns no pages");
  }
  std::vector<std::uint32_t> assignment = current_assignment();
  for (auto& a : assignment) {
    if (a == group) a = successor;
  }
  // The chaos harness's deliberately-broken ranker follows its pages: if the
  // faulty group departs, the successor inherits the fault, so a --broken
  // self-test stays broken across churn.
  if (opts_.fault_skip_refresh_group == group) {
    opts_.fault_skip_refresh_group = successor;
  }
  apply_churn(assignment);
}

void DistributedRanking::join_group(std::uint32_t group, std::uint32_t donor) {
  if (group >= groups_.size() || donor >= groups_.size()) {
    throw std::out_of_range("DistributedRanking::join_group: group out of range");
  }
  if (donor == group) {
    throw std::invalid_argument("DistributedRanking::join_group: donor == group");
  }
  if (groups_[group]->size() != 0) {
    throw std::invalid_argument(
        "DistributedRanking::join_group: joining group already owns pages");
  }
  const auto donor_members = groups_[donor]->members();
  if (donor_members.size() < 2) {
    throw std::invalid_argument(
        "DistributedRanking::join_group: donor has fewer than two pages");
  }
  std::vector<std::uint32_t> assignment = current_assignment();
  // The joiner takes the upper half of the donor's (ascending) key range —
  // the successor-split a structured overlay performs on node arrival.
  const std::size_t keep = (donor_members.size() + 1) / 2;
  for (std::size_t i = keep; i < donor_members.size(); ++i) {
    assignment[donor_members[i]] = group;
  }
  apply_churn(assignment);
}

void DistributedRanking::set_latency_jitter(double jitter) {
  if (!(jitter >= 0.0)) {
    throw std::invalid_argument("DistributedRanking: latency_jitter must be >= 0");
  }
  latency_jitter_ = jitter;
}

double DistributedRanking::delivery_delay(std::uint32_t src, std::uint32_t dst) {
  double delay = opts_.delivery_latency;
  if (opts_.overlay != nullptr) {
    // Indirect transmission: one overlay hop per per_hop_latency. Routes are
    // static in the stabilized overlay, so hop counts are cached.
    const std::uint64_t key = pair_key(src, dst);
    auto it = hop_cache_.find(key);
    if (it == hop_cache_.end()) {
      const auto path = opts_.overlay->route(src, opts_.overlay->id_of(dst));
      it = hop_cache_.emplace(key, static_cast<std::uint32_t>(path.size())).first;
    }
    delay = opts_.per_hop_latency * static_cast<double>(it->second);
  }
  // One jitter draw per delivered message, and only when jitter is on — the
  // jitter-off RNG streams are bit-identical to the pre-jitter engine.
  if (latency_jitter_ > 0.0) delay += jitter_rng_.uniform(0.0, latency_jitter_);
  return delay;
}

void DistributedRanking::schedule_step(std::uint32_t group) {
  active_[group] = 1;
  const double wait = std::max(kMinWait, waits_.next_wait(group));
  queue_.schedule_in(wait, [this, group] { run_step(group); });
}

void DistributedRanking::send_slice(std::uint32_t src, std::uint32_t dst,
                                    YSlice slice) {
  ++messages_sent_;
  records_sent_ += slice.record_count;
  records_per_group_[src] += slice.record_count;
  if (obs_.messages_sent != nullptr) {
    ++*obs_.messages_sent;
    *obs_.records_sent += slice.record_count;
    *obs_.data_bytes += slice_wire_bytes(slice.record_count);
    obs_.slice_records->add(slice.record_count);
  }

  if (!reliable_) {
    // The paper's fire-and-forget channel (bit-compatible with the
    // pre-reliability engine: one loss draw per send, commit on delivery).
    // The loss draw always comes first; the fault plane draws from its own
    // RNG and only while a cut is active, so the loss stream never shifts.
    const bool pass_loss = loss_.delivered();
    const bool pass_cut = fault_plane_.deliver(src, dst);
    if (!pass_cut && obs_.partition_drops != nullptr) ++*obs_.partition_drops;
    if (!pass_loss || !pass_cut) {
      ++messages_lost_;
      if (obs_.messages_lost != nullptr) ++*obs_.messages_lost;
      return;
    }
    if (opts_.send_threshold > 0.0) groups_[src]->commit_sent(dst, slice);
    const double delay = delivery_delay(src, dst);
    if (opts_.overlay != nullptr) {
      const std::uint64_t hops = slice.record_count * hop_cache_[pair_key(src, dst)];
      record_hops_ += hops;
      if (obs_.record_hops != nullptr) *obs_.record_hops += hops;
    }
    if (opts_.tracer != nullptr) {
      opts_.tracer->complete(obs::names::kTraceMsgFlight, queue_.now(), delay, dst,
                             {}, static_cast<double>(slice.record_count));
    }
    if (delay <= 0.0) {
      if (!frame_survives(src, dst, 0, slice)) return;
      if (obs_.deliveries != nullptr) ++*obs_.deliveries;
      inbox_[dst].emplace_back(src, std::move(slice));
    } else {
      // Move the slice into the event closure; it lands in the inbox when
      // the event fires — unless churn rebuilt the wiring meanwhile (the
      // slice's local indices would be stale, so it is dropped; with no
      // retransmission that loss is repaired by the sender's next step).
      auto shared = std::make_shared<YSlice>(std::move(slice));
      const std::uint64_t gen = generation_;
      queue_.schedule_in(delay, [this, dst, src, shared, gen] {
        if (gen != generation_) return;
        if (!frame_survives(src, dst, 0, *shared)) return;
        if (obs_.deliveries != nullptr) ++*obs_.deliveries;
        inbox_[dst].emplace_back(src, std::move(*shared));
      });
    }
    return;
  }

  // Reliable exchange: stamp an epoch, buffer the payload if retransmission
  // is on (a fresh send supersedes the pair's previous unacked slice — the
  // buffer holds at most one slice per peer), then transmit. Sends to a
  // suspected peer still go out: they double as probes.
  const transport::Epoch epoch = reliable_->begin_send(src, dst);
  auto payload = std::make_shared<const YSlice>(std::move(slice));
  if (opts_.reliability.retransmit) {
    pending_payload_[pair_key(src, dst)] = payload;
  }

  const bool pass_loss = loss_.delivered();
  const bool pass_cut = fault_plane_.deliver(src, dst);
  if (!pass_cut && obs_.partition_drops != nullptr) ++*obs_.partition_drops;
  const bool delivered = pass_loss && pass_cut;
  if (!delivered) {
    ++messages_lost_;
    if (obs_.messages_lost != nullptr) ++*obs_.messages_lost;
  }
  if (delivered) {
    if (opts_.send_threshold > 0.0 && !opts_.reliability.retransmit) {
      // Without retransmission the loss draw above is the only delivery
      // knowledge; commit eagerly on it, exactly like fire-and-forget.
      // (With retransmission the commit happens on ack instead.)
      groups_[src]->commit_sent(dst, *payload);
    }
    const double delay = delivery_delay(src, dst);
    if (opts_.overlay != nullptr) {
      const std::uint64_t hops =
          payload->record_count * hop_cache_[pair_key(src, dst)];
      record_hops_ += hops;
      if (obs_.record_hops != nullptr) *obs_.record_hops += hops;
    }
    if (opts_.tracer != nullptr) {
      opts_.tracer->complete(obs::names::kTraceMsgFlight, queue_.now(), delay, dst,
                             {}, static_cast<double>(payload->record_count));
    }
    const std::uint64_t gen = generation_;
    if (delay <= 0.0) {
      deliver(src, dst, epoch, *payload);
    } else {
      queue_.schedule_in(delay, [this, src, dst, epoch, payload, gen] {
        if (gen != generation_) return;
        deliver(src, dst, epoch, *payload);
      });
    }
  }
  if (opts_.reliability.retransmit) schedule_retransmit(src, dst, epoch);
}

void DistributedRanking::deliver(std::uint32_t src, std::uint32_t dst,
                                 transport::Epoch epoch, YSlice slice) {
  // Transport-level processing at delivery time: runs even when dst's
  // application loop is paused (the protocol stack stays up; only the
  // ranker sleeps) and even when dst crashed meanwhile (a reboot does not
  // reset the channel).
  //
  // Corruption defense first: a quarantined frame is garbage — the receiver
  // cannot trust its addressing or epoch, so it is dropped before any
  // protocol processing (no liveness evidence, no epoch accept, no ack;
  // the sender's retransmit timer re-ships it).
  if (!frame_survives(src, dst, epoch, slice)) return;
  // Receiving data from src is evidence src is alive: clear any suspicion
  // on the reverse pair and, if a retransmit was parked there, re-arm it.
  if (reliable_->peer_alive(dst, src)) {
    schedule_retransmit(dst, src, reliable_->pending_epoch(dst, src));
  }
  const bool fresh = reliable_->accept(src, dst, epoch);
  if (fresh) {
    if (obs_.deliveries != nullptr) ++*obs_.deliveries;
    inbox_[dst].emplace_back(src, std::move(slice));
  } else if (obs_.duplicates_rejected != nullptr) {
    ++*obs_.duplicates_rejected;
  }
  // Ack even a rejected duplicate — the ack is cumulative (it carries the
  // receiver's accept high-water mark), so it also repairs a lost earlier
  // ack. Acks ride their own lossy channel.
  ++acks_sent_;
  if (obs_.acks_sent != nullptr) ++*obs_.acks_sent;
  const bool ack_pass_loss = ack_loss_.delivered();
  // The ack crosses the cut in the reverse direction (dst → src), so an
  // asymmetric partition can pass data one way and starve the acks.
  const bool ack_pass_cut = fault_plane_.deliver(dst, src);
  if (!ack_pass_cut && obs_.partition_drops != nullptr) {
    ++*obs_.partition_drops;
  }
  if (!ack_pass_loss || !ack_pass_cut) return;
  const transport::Epoch value = reliable_->accepted_epoch(src, dst);
  const double delay = opts_.reliability.ack_latency;
  auto apply_ack = [this, src, dst, value] {
    ++acks_delivered_;
    if (obs_.acks_delivered != nullptr) ++*obs_.acks_delivered;
    if (reliable_->on_ack(src, dst, value)) {
      // Cleared the pending epoch: the buffered payload is now known
      // delivered — commit it for delta-sending and drop it.
      const auto it = pending_payload_.find(pair_key(src, dst));
      if (it != pending_payload_.end()) {
        if (opts_.send_threshold > 0.0) {
          groups_[src]->commit_sent(dst, *it->second);
        }
        pending_payload_.erase(it);
      }
    }
  };
  if (delay <= 0.0) {
    apply_ack();
  } else {
    queue_.schedule_in(delay, apply_ack);
  }
}

bool DistributedRanking::frame_survives(std::uint32_t src, std::uint32_t dst,
                                        transport::Epoch epoch, YSlice& slice) {
  if (!fault_plane_.corruption_enabled()) return true;
  // While corruption is live, every slice pays the encode → (maybe flip
  // bytes) → decode round-trip, so the defense is exercised on clean frames
  // too — a codec that mangled valid payloads would corrupt ranks and trip
  // the finiteness/monotone invariants immediately.
  const transport::FrameHeader header{src, dst, epoch, slice.record_count};
  auto frame = transport::encode_frame(header, slice.entries);
  const bool corrupted = fault_plane_.maybe_corrupt(frame);
  transport::DecodedFrame decoded;
  const auto verdict = transport::decode_frame(frame, decoded);
  if (verdict != transport::FrameVerdict::kOk) {
    ++frames_quarantined_;
    if (obs_.frames_quarantined != nullptr) ++*obs_.frames_quarantined;
    return false;
  }
  if (corrupted || decoded.header.src != src || decoded.header.dst != dst ||
      decoded.header.epoch != epoch) {
    // A corrupted frame passed the 64-bit checksum — collision odds are
    // negligible, so this tripwire staying 0 is an invariant the chaos
    // checker enforces ("zero applied corrupt frames").
    ++corrupt_frames_applied_;
  }
  slice.record_count = decoded.header.record_count;
  slice.entries = std::move(decoded.entries);
  return true;
}

bool DistributedRanking::has_cut_edges(std::uint32_t src,
                                       std::uint32_t dst) const {
  const auto dests = groups_.at(src)->efferent_destinations();
  return std::find(dests.begin(), dests.end(), dst) != dests.end();
}

void DistributedRanking::schedule_retransmit(std::uint32_t src, std::uint32_t dst,
                                             transport::Epoch epoch) {
  const double delay = reliable_->timer_delay(src, dst);
  const std::uint64_t gen = generation_;
  queue_.schedule_in(delay, [this, src, dst, epoch, gen] {
    // Timers armed before a churn rebuild reference retired payloads.
    if (gen != generation_) return;
    on_retransmit_timer(src, dst, epoch);
  });
}

void DistributedRanking::on_retransmit_timer(std::uint32_t src, std::uint32_t dst,
                                             transport::Epoch epoch) {
  switch (reliable_->on_timer(src, dst, epoch)) {
    case transport::ReliableExchange::TimerVerdict::kSuperseded:
    case transport::ReliableExchange::TimerVerdict::kAcked:
    case transport::ReliableExchange::TimerVerdict::kParked:
      return;  // timer is dead; a newer send or an ack owns the pair now
    case transport::ReliableExchange::TimerVerdict::kSuspectNow:
      // Failure detection tripped: park retransmits to dst (fresh sends
      // still probe it) and optionally decay its share of our X so a dead
      // peer's stale contribution fades instead of persisting forever.
      // (suspect_decay = 1, the default, keeps the last value in force —
      // the only setting under which Thm 4.1 survives a suspicion.)
      if (opts_.reliability.suspect_decay < 1.0) {
        groups_[src]->scale_received(dst, opts_.reliability.suspect_decay);
      }
      if (obs_.suspicions != nullptr) ++*obs_.suspicions;
      return;
    case transport::ReliableExchange::TimerVerdict::kRetransmit:
      break;
  }
  const auto it = pending_payload_.find(pair_key(src, dst));
  if (it == pending_payload_.end()) return;  // crash dropped the buffer
  const std::shared_ptr<const YSlice> payload = it->second;
  ++retransmissions_;
  ++messages_sent_;
  // Accounting fix: a retransmit re-ships the *same* logical records, so it
  // must not inflate records_sent_ / records_per_group_ / record_hops_ —
  // those feed the §4.5 cost model's W and h·l·W, which price logical
  // records, not channel attempts. (It used to, overstating the cost model
  // by exactly the loss-driven retransmit rate.) Re-shipped records and
  // their wire bytes are tallied apart as overhead.
  retransmit_records_ += payload->record_count;
  if (obs_.retransmissions != nullptr) {
    ++*obs_.retransmissions;
    ++*obs_.messages_sent;
    *obs_.retransmit_records += payload->record_count;
    *obs_.retransmit_bytes += slice_wire_bytes(payload->record_count);
  }
  const bool pass_loss = loss_.delivered();
  const bool pass_cut = fault_plane_.deliver(src, dst);
  if (!pass_cut && obs_.partition_drops != nullptr) ++*obs_.partition_drops;
  if (!pass_loss || !pass_cut) {
    ++messages_lost_;
    if (obs_.messages_lost != nullptr) ++*obs_.messages_lost;
  } else {
    const double delay = delivery_delay(src, dst);
    if (opts_.tracer != nullptr) {
      opts_.tracer->complete(obs::names::kTraceRetransmit, queue_.now(), delay, dst,
                             {}, static_cast<double>(payload->record_count));
    }
    const std::uint64_t gen = generation_;
    if (delay <= 0.0) {
      deliver(src, dst, epoch, *payload);
    } else {
      queue_.schedule_in(delay, [this, src, dst, epoch, payload, gen] {
        if (gen != generation_) return;
        deliver(src, dst, epoch, *payload);
      });
    }
  }
  schedule_retransmit(src, dst, epoch);
}

void DistributedRanking::run_step(std::uint32_t group) {
  active_[group] = 0;
  if (paused_[group]) return;  // suspended: no work, no reschedule
  PageGroup& pg = *groups_[group];
  if (pg.size() == 0) return;  // departed in churn while this event was queued

  // Refresh X: drain every slice that arrived since the last step. Applying
  // in arrival order leaves exactly the newest slice per source in force
  // (with epochs on, stale reordered slices never reached the inbox).
  // (fault_skip_refresh_group is the chaos harness's deliberately broken
  // engine: that group drops its inbox unapplied, so its X stays stale and
  // the convergence invariant must catch it.)
  auto& inbox = inbox_[group];
  if (group != opts_.fault_skip_refresh_group) {
    for (auto& [source, slice] : inbox) {
      // Poisoned-slice guard (defense in depth behind the frame codec): a
      // NaN/Inf/negative or misordered payload must never reach refresh_x,
      // where it would propagate through every subsequent sweep.
      if (!transport::entries_valid(slice.entries)) {
        ++slices_rejected_;
        continue;
      }
      pg.refresh_x(source, std::move(slice));
    }
  }
  inbox.clear();

  const bool detect = opts_.stability_epsilon > 0.0;
  const bool dpr1 = opts_.algorithm == Algorithm::kDPR1;
  // Observability also wants the per-step residual; measuring it never
  // feeds back into the algorithm, so turning metrics on cannot change
  // results — only add the measurement cost.
  const bool want_residual =
      detect || obs_.step_residual != nullptr || opts_.tracer != nullptr;
  // DPR2's single sweep reports its own fused residual, so only DPR1's
  // multi-sweep solve needs a before-snapshot to measure the step delta.
  if (want_residual && dpr1) {
    const auto r = pg.ranks();
    step_scratch_.assign(r.begin(), r.end());
  }

  // Compute R.
  if (dpr1) {
    const std::size_t used = pg.solve_to_convergence(opts_.inner_epsilon,
                                                     opts_.inner_max_iterations,
                                                     pool_);
    inner_sweeps_ += used;
    if (obs_.inner_sweeps != nullptr) {
      *obs_.inner_sweeps += used;
      obs_.inner_iterations->add(used);
    }
  } else {
    pg.sweep_once(pool_);
    ++inner_sweeps_;
    if (obs_.inner_sweeps != nullptr) ++*obs_.inner_sweeps;
  }
  pg.count_outer_step();
  if (obs_.outer_steps != nullptr) {
    ++*obs_.outer_steps;
    ++*obs_.group_outer_steps[group];
  }

  if (want_residual) {
    const double delta = dpr1 ? util::l1_distance(pg.ranks(), step_scratch_)
                              : pg.last_sweep_delta();
    if (obs_.step_residual != nullptr) {
      obs_.step_residual->add(std::log10(delta));
      *obs_.group_residual[group] = delta;
    }
    if (opts_.tracer != nullptr) {
      opts_.tracer->instant(obs::names::kTraceStep, queue_.now(), group, {}, delta);
    }
    if (detect) {
      // Report this step's stability to the coordinator (reliable control
      // message; the simulator applies it immediately).
      const bool stable = delta <= opts_.stability_epsilon;
      ++status_messages_;
      if (stable != (stable_flag_[group] != 0)) {
        stable_flag_[group] = stable ? 1 : 0;
        stable_count_ += stable ? 1 : -1;
      }
      if (!termination_detected() && stable_count_ == nonempty_) {
        termination_time_ = queue_.now();
      }
    }
  }

  // Compute and send Y to every group we have cut edges into.
  for (const std::uint32_t dest : pg.efferent_destinations()) {
    YSlice slice = pg.compute_y(dest, opts_.send_threshold);
    if (opts_.send_threshold > 0.0 && slice.entries.empty()) {
      continue;  // nothing moved enough to be worth a message
    }
    send_slice(group, dest, std::move(slice));
  }

  // Publish-at-iteration-boundary (DESIGN.md §12): loop-step boundaries are
  // the engine's consistent cut points, and they happen at deterministic
  // event times — so the published epoch sequence is bitwise-identical
  // across pool sizes, like every other result.
  if (opts_.snapshot_sink != nullptr && queue_.now() + 1e-12 >= next_snapshot_) {
    publish_snapshot();
  }

  schedule_step(group);
}

void DistributedRanking::publish_snapshot() {
  if (opts_.snapshot_sink == nullptr) return;
  // Hand the sink each group's (members, ranks) view directly: the sink
  // scatters into its own storage exactly once and the engine gathers
  // nothing — publishing a 50k-page snapshot costs one streaming pass,
  // which is what keeps it inside the serving layer's overhead budget.
  // The views die when the call returns (RankSnapshotSink contract).
  snapshot_cuts_.clear();
  snapshot_cuts_.reserve(groups_.size());
  for (const auto& g : groups_) {
    snapshot_cuts_.push_back(GroupCut{g->members(), g->ranks()});
  }
  opts_.snapshot_sink->publish_groups(
      queue_.now(), snapshot_cuts_,
      static_cast<std::uint32_t>(graph_.num_pages()), ownership_version_);
  next_snapshot_ = queue_.now() + opts_.snapshot_interval;
  if (opts_.tracer != nullptr) {
    opts_.tracer->instant(obs::names::kTraceSnapshot, queue_.now(), 0, {},
                          static_cast<double>(num_groups()));
  }
}

void DistributedRanking::set_reference(std::vector<double> reference) {
  if (reference.size() != graph_.num_pages()) {
    throw std::invalid_argument("DistributedRanking: reference size mismatch");
  }
  reference_ = std::move(reference);
}

std::vector<double> DistributedRanking::global_ranks() const {
  std::vector<double> ranks(graph_.num_pages(), 0.0);
  for (const auto& grp : groups_) {
    const auto members = grp->members();
    const auto local = grp->ranks();
    for (std::size_t i = 0; i < members.size(); ++i) ranks[members[i]] = local[i];
  }
  return ranks;
}

double DistributedRanking::relative_error_now() const {
  if (reference_.empty()) {
    throw std::logic_error("DistributedRanking: reference not set");
  }
  return util::relative_error(global_ranks(), reference_);
}

std::vector<std::uint64_t> DistributedRanking::outer_steps_per_group() const {
  std::vector<std::uint64_t> steps;
  steps.reserve(groups_.size());
  for (const auto& grp : groups_) steps.push_back(grp->outer_steps());
  return steps;
}

std::uint64_t DistributedRanking::total_outer_steps() const noexcept {
  std::uint64_t total = retired_outer_steps_;
  for (const auto& grp : groups_) total += grp->outer_steps();
  return total;
}

double DistributedRanking::mean_outer_steps() const noexcept {
  if (nonempty_ == 0) return 0.0;
  return static_cast<double>(total_outer_steps()) / static_cast<double>(nonempty_);
}

std::vector<Sample> DistributedRanking::run(double t_end, double sample_interval) {
  if (reference_.empty()) {
    throw std::logic_error("DistributedRanking: reference not set");
  }
  if (sample_interval <= 0.0) {
    throw std::invalid_argument("DistributedRanking: sample_interval must be > 0");
  }
  std::vector<Sample> samples;
  if (prev_sample_ranks_.empty()) prev_sample_ranks_ = global_ranks();

  for (double t = queue_.now() + sample_interval; t <= t_end + 1e-12;
       t += sample_interval) {
    queue_.run_until(t);
    Sample s;
    s.time = t;
    const auto ranks = global_ranks();
    s.relative_error = util::relative_error(ranks, reference_);
    s.average_rank = ranks.empty() ? 0.0
                                   : util::accurate_sum(ranks) /
                                         static_cast<double>(ranks.size());
    double min_delta = 0.0;
    for (std::size_t i = 0; i < ranks.size(); ++i) {
      min_delta = std::min(min_delta, ranks[i] - prev_sample_ranks_[i]);
    }
    s.min_rank_delta = min_delta;
    s.total_outer_steps = total_outer_steps();
    prev_sample_ranks_ = ranks;
    samples.push_back(s);
  }
  return samples;
}

ConvergenceResult DistributedRanking::run_until_error(double threshold,
                                                      double max_time,
                                                      double check_interval) {
  if (reference_.empty()) {
    throw std::logic_error("DistributedRanking: reference not set");
  }
  ConvergenceResult result;
  double err = relative_error_now();
  double t = queue_.now();
  while (err > threshold && t < max_time) {
    t = std::min(t + check_interval, max_time);
    queue_.run_until(t);
    err = relative_error_now();
  }
  result.reached = err <= threshold;
  result.time = t;
  result.mean_outer_steps = mean_outer_steps();
  for (const auto& grp : groups_) {
    result.max_outer_steps = std::max(result.max_outer_steps, grp->outer_steps());
  }
  result.messages_sent = messages_sent_;
  result.messages_lost = messages_lost_;
  result.records_sent = records_sent_;
  result.retransmit_records = retransmit_records_;
  result.retransmissions = retransmissions_;
  result.acks_sent = acks_sent_;
  result.duplicates_rejected = duplicates_rejected();
  result.final_relative_error = err;
  return result;
}

}  // namespace p2prank::engine
