#include "engine/distributed.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "util/stats.hpp"

namespace p2prank::engine {

DistributedRanking::DistributedRanking(const graph::WebGraph& g,
                                       std::span<const std::uint32_t> assignment,
                                       std::uint32_t k, const EngineOptions& opts,
                                       util::ThreadPool& pool)
    : graph_(g),
      opts_(opts),
      pool_(pool),
      inbox_(k),
      waits_(opts.t1, opts.t2, k, opts.seed ^ 0x5851f42d4c957f2dULL),
      loss_(opts.delivery_probability, opts.seed ^ 0x14057b7ef767814fULL) {
  if (assignment.size() != g.num_pages()) {
    throw std::invalid_argument("DistributedRanking: assignment size mismatch");
  }
  if (k == 0) throw std::invalid_argument("DistributedRanking: k == 0");
  if (!(opts.alpha > 0.0 && opts.alpha < 1.0)) {
    throw std::invalid_argument("DistributedRanking: alpha out of (0,1)");
  }

  // --- Collect members per group -------------------------------------------
  std::vector<std::vector<graph::PageId>> members(k);
  for (graph::PageId p = 0; p < g.num_pages(); ++p) {
    if (assignment[p] >= k) {
      throw std::invalid_argument("DistributedRanking: assignment value >= k");
    }
    members[assignment[p]].push_back(p);  // ascending because p ascends
  }

  // Local index of every page within its group.
  std::vector<std::uint32_t> local_index(g.num_pages(), 0);
  for (std::uint32_t grp = 0; grp < k; ++grp) {
    for (std::uint32_t i = 0; i < members[grp].size(); ++i) {
      local_index[members[grp][i]] = i;
    }
  }

  if (!opts.personalization.empty() &&
      opts.personalization.size() != g.num_pages()) {
    throw std::invalid_argument("DistributedRanking: personalization size mismatch");
  }
  if (opts.overlay != nullptr && opts.overlay->num_nodes() < k) {
    throw std::invalid_argument("DistributedRanking: overlay smaller than k");
  }

  groups_.reserve(k);
  std::vector<double> e_local;
  for (std::uint32_t grp = 0; grp < k; ++grp) {
    if (!members[grp].empty()) ++nonempty_;
    e_local.clear();
    if (!opts.personalization.empty()) {
      e_local.reserve(members[grp].size());
      for (const graph::PageId p : members[grp]) {
        e_local.push_back(opts.personalization[p]);
      }
    }
    groups_.push_back(std::make_unique<PageGroup>(g, std::move(members[grp]),
                                                  opts.alpha, e_local));
  }

  // --- Wire efferent (cut) edges -------------------------------------------
  for (graph::PageId u = 0; u < g.num_pages(); ++u) {
    const std::uint32_t gu = assignment[u];
    const auto d = g.out_degree(u);
    if (d == 0) continue;
    const double weight = opts.alpha / static_cast<double>(d);
    for (const graph::PageId v : g.out_links(u)) {
      const std::uint32_t gv = assignment[v];
      if (gv == gu) continue;
      groups_[gu]->add_efferent_edge(gv, local_index[v], local_index[u], weight);
    }
  }
  for (auto& grp : groups_) grp->finalize_efferents();

  // --- Kick off every non-empty ranker --------------------------------------
  stable_flag_.assign(k, 0);
  paused_.assign(k, 0);
  records_per_group_.assign(k, 0);
  for (std::uint32_t grp = 0; grp < k; ++grp) {
    if (groups_[grp]->size() > 0) schedule_step(grp);
  }
}

void DistributedRanking::warm_start(std::span<const double> global_ranks) {
  if (global_ranks.size() != graph_.num_pages()) {
    throw std::invalid_argument("DistributedRanking: warm_start size mismatch");
  }
  std::vector<double> local;
  for (auto& grp : groups_) {
    const auto members = grp->members();
    local.clear();
    local.reserve(members.size());
    for (const graph::PageId p : members) local.push_back(global_ranks[p]);
    grp->set_ranks(local);
  }
  // Restore afferent state too: in a running deployment each ranker's X
  // survives a crawl update — it is received state, not recomputed. Prime
  // it by delivering every group's Y (computed from the warm ranks)
  // directly, outside the message accounting.
  for (std::uint32_t src = 0; src < groups_.size(); ++src) {
    for (const std::uint32_t dest : groups_[src]->efferent_destinations()) {
      groups_[dest]->refresh_x(src, groups_[src]->compute_y(dest));
    }
  }
}

void DistributedRanking::pause_group(std::uint32_t group) {
  paused_.at(group) = 1;
}

void DistributedRanking::resume_group(std::uint32_t group) {
  if (paused_.at(group) == 0) return;
  paused_[group] = 0;
  if (groups_[group]->size() > 0) schedule_step(group);
}

bool DistributedRanking::is_paused(std::uint32_t group) const {
  return paused_.at(group) != 0;
}

void DistributedRanking::crash_group(std::uint32_t group) {
  PageGroup& pg = *groups_.at(group);
  if (pg.size() == 0) return;  // nothing to lose, nothing scheduled
  pg.reset_state();
  inbox_[group].clear();
  // A rebooted ranker starts unstable until it reports otherwise.
  if (stable_flag_[group] != 0) {
    stable_flag_[group] = 0;
    --stable_count_;
  }
  // Deliberately no (re)scheduling: a running group's next step is already
  // queued and simply finds empty state; a paused group stays paused until
  // resume_group (crash-while-down semantics).
}

double DistributedRanking::delivery_delay(std::uint32_t src, std::uint32_t dst) {
  if (opts_.overlay == nullptr) return opts_.delivery_latency;
  // Indirect transmission: one overlay hop per per_hop_latency. Routes are
  // static in the stabilized overlay, so hop counts are cached.
  const std::uint64_t key = (static_cast<std::uint64_t>(src) << 32) | dst;
  auto it = hop_cache_.find(key);
  if (it == hop_cache_.end()) {
    const auto path = opts_.overlay->route(src, opts_.overlay->id_of(dst));
    it = hop_cache_.emplace(key, static_cast<std::uint32_t>(path.size())).first;
  }
  return opts_.per_hop_latency * static_cast<double>(it->second);
}

void DistributedRanking::schedule_step(std::uint32_t group) {
  const double wait = std::max(kMinWait, waits_.next_wait(group));
  queue_.schedule_in(wait, [this, group] { run_step(group); });
}

void DistributedRanking::run_step(std::uint32_t group) {
  if (paused_[group]) return;  // suspended: no work, no reschedule
  PageGroup& pg = *groups_[group];

  // Refresh X: drain every slice that arrived since the last step. Applying
  // in arrival order leaves exactly the newest slice per source in force.
  // (fault_skip_refresh_group is the chaos harness's deliberately broken
  // engine: that group drops its inbox unapplied, so its X stays stale and
  // the convergence invariant must catch it.)
  auto& inbox = inbox_[group];
  if (group != opts_.fault_skip_refresh_group) {
    for (auto& [source, slice] : inbox) pg.refresh_x(source, std::move(slice));
  }
  inbox.clear();

  const bool detect = opts_.stability_epsilon > 0.0;
  const bool dpr1 = opts_.algorithm == Algorithm::kDPR1;
  // DPR2's single sweep reports its own fused residual, so only DPR1's
  // multi-sweep solve needs a before-snapshot to measure the step delta.
  if (detect && dpr1) {
    const auto r = pg.ranks();
    step_scratch_.assign(r.begin(), r.end());
  }

  // Compute R.
  if (dpr1) {
    inner_sweeps_ += pg.solve_to_convergence(opts_.inner_epsilon,
                                             opts_.inner_max_iterations, pool_);
  } else {
    pg.sweep_once(pool_);
    ++inner_sweeps_;
  }
  pg.count_outer_step();

  if (detect) {
    // Report this step's stability to the coordinator (reliable control
    // message; the simulator applies it immediately).
    const double delta = dpr1 ? util::l1_distance(pg.ranks(), step_scratch_)
                              : pg.last_sweep_delta();
    const bool stable = delta <= opts_.stability_epsilon;
    ++status_messages_;
    if (stable != (stable_flag_[group] != 0)) {
      stable_flag_[group] = stable ? 1 : 0;
      stable_count_ += stable ? 1 : -1;
    }
    if (!termination_detected() && stable_count_ == nonempty_) {
      termination_time_ = queue_.now();
    }
  }

  // Compute and send Y to every group we have cut edges into.
  for (const std::uint32_t dest : pg.efferent_destinations()) {
    YSlice slice = pg.compute_y(dest, opts_.send_threshold);
    if (opts_.send_threshold > 0.0 && slice.entries.empty()) {
      continue;  // nothing moved enough to be worth a message
    }
    ++messages_sent_;
    records_sent_ += slice.record_count;
    records_per_group_[group] += slice.record_count;
    if (!loss_.delivered()) {
      ++messages_lost_;
      continue;
    }
    if (opts_.send_threshold > 0.0) pg.commit_sent(dest, slice);
    const double delay = delivery_delay(group, dest);
    if (opts_.overlay != nullptr) {
      record_hops_ += slice.record_count *
                      hop_cache_[(static_cast<std::uint64_t>(group) << 32) | dest];
    }
    if (delay <= 0.0) {
      inbox_[dest].emplace_back(group, std::move(slice));
    } else {
      // Move the slice into the event closure; it lands in the inbox when
      // the event fires.
      auto shared = std::make_shared<YSlice>(std::move(slice));
      queue_.schedule_in(delay, [this, dest, group, shared] {
        inbox_[dest].emplace_back(group, std::move(*shared));
      });
    }
  }

  schedule_step(group);
}

void DistributedRanking::set_reference(std::vector<double> reference) {
  if (reference.size() != graph_.num_pages()) {
    throw std::invalid_argument("DistributedRanking: reference size mismatch");
  }
  reference_ = std::move(reference);
}

std::vector<double> DistributedRanking::global_ranks() const {
  std::vector<double> ranks(graph_.num_pages(), 0.0);
  for (const auto& grp : groups_) {
    const auto members = grp->members();
    const auto local = grp->ranks();
    for (std::size_t i = 0; i < members.size(); ++i) ranks[members[i]] = local[i];
  }
  return ranks;
}

double DistributedRanking::relative_error_now() const {
  if (reference_.empty()) {
    throw std::logic_error("DistributedRanking: reference not set");
  }
  return util::relative_error(global_ranks(), reference_);
}

std::vector<std::uint64_t> DistributedRanking::outer_steps_per_group() const {
  std::vector<std::uint64_t> steps;
  steps.reserve(groups_.size());
  for (const auto& grp : groups_) steps.push_back(grp->outer_steps());
  return steps;
}

std::uint64_t DistributedRanking::total_outer_steps() const noexcept {
  std::uint64_t total = 0;
  for (const auto& grp : groups_) total += grp->outer_steps();
  return total;
}

double DistributedRanking::mean_outer_steps() const noexcept {
  if (nonempty_ == 0) return 0.0;
  return static_cast<double>(total_outer_steps()) / static_cast<double>(nonempty_);
}

std::vector<Sample> DistributedRanking::run(double t_end, double sample_interval) {
  if (reference_.empty()) {
    throw std::logic_error("DistributedRanking: reference not set");
  }
  if (sample_interval <= 0.0) {
    throw std::invalid_argument("DistributedRanking: sample_interval must be > 0");
  }
  std::vector<Sample> samples;
  if (prev_sample_ranks_.empty()) prev_sample_ranks_ = global_ranks();

  for (double t = queue_.now() + sample_interval; t <= t_end + 1e-12;
       t += sample_interval) {
    queue_.run_until(t);
    Sample s;
    s.time = t;
    const auto ranks = global_ranks();
    s.relative_error = util::relative_error(ranks, reference_);
    s.average_rank = ranks.empty() ? 0.0
                                   : util::accurate_sum(ranks) /
                                         static_cast<double>(ranks.size());
    double min_delta = 0.0;
    for (std::size_t i = 0; i < ranks.size(); ++i) {
      min_delta = std::min(min_delta, ranks[i] - prev_sample_ranks_[i]);
    }
    s.min_rank_delta = min_delta;
    s.total_outer_steps = total_outer_steps();
    prev_sample_ranks_ = ranks;
    samples.push_back(s);
  }
  return samples;
}

ConvergenceResult DistributedRanking::run_until_error(double threshold,
                                                      double max_time,
                                                      double check_interval) {
  if (reference_.empty()) {
    throw std::logic_error("DistributedRanking: reference not set");
  }
  ConvergenceResult result;
  double err = relative_error_now();
  double t = queue_.now();
  while (err > threshold && t < max_time) {
    t = std::min(t + check_interval, max_time);
    queue_.run_until(t);
    err = relative_error_now();
  }
  result.reached = err <= threshold;
  result.time = t;
  result.mean_outer_steps = mean_outer_steps();
  for (const auto& grp : groups_) {
    result.max_outer_steps = std::max(result.max_outer_steps, grp->outer_steps());
  }
  result.messages_sent = messages_sent_;
  result.messages_lost = messages_lost_;
  result.records_sent = records_sent_;
  result.final_relative_error = err;
  return result;
}

}  // namespace p2prank::engine
