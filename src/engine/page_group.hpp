// One page ranker's local state (Section 3's "page group" G).
//
// A group owns a subset of the crawl and keeps:
//   * A   — the local open-system matrix over its own pages (inner links),
//   * R   — its current rank vector,
//   * X   — afferent rank, assembled from the latest Y slice received from
//           each other group (refresh = replace that group's slice, NOT
//           accumulate: a slice is a snapshot of the sender's efferent
//           contribution, so a newer one supersedes the older),
//   * efferent blocks — for every destination group, the cut edges into it,
//           from which the outgoing Y slice is computed as
//           Y(v) = Σ α·R(u)/d(u) over cut edges u→v (the paper prints β in
//           formula 3.5; see DESIGN.md "Known typo handled").
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "graph/web_graph.hpp"
#include "rank/link_matrix.hpp"
#include "rank/rank_types.hpp"
#include "util/thread_pool.hpp"

namespace p2prank::engine {

/// Sparse efferent-rank message from one group to another. Semantically a
/// *patch*: each entry is the sender's current total contribution to that
/// destination page; entries not present keep their previous value. (A full
/// snapshot is simply a patch containing every entry.)
struct YSlice {
  /// (destination-local page index, rank contribution) pairs, ascending.
  std::vector<std::pair<std::uint32_t, double>> entries;
  /// Number of <url_from, url_to, score> wire records this slice stands
  /// for (= cut edges feeding the included entries) — traffic accounting.
  std::uint64_t record_count = 0;
};

class PageGroup {
 public:
  /// `members`: ascending global PageIds owned by this group. `e_local`
  /// optionally personalizes the rank source: E(members[i]) = e_local[i]
  /// (empty = uniform E = 1, the paper's default).
  PageGroup(const graph::WebGraph& g, std::vector<graph::PageId> members,
            double alpha, std::span<const double> e_local = {});

  [[nodiscard]] std::size_t size() const noexcept { return members_.size(); }
  [[nodiscard]] std::span<const graph::PageId> members() const noexcept {
    return members_;
  }
  [[nodiscard]] std::span<const double> ranks() const noexcept { return ranks_; }
  [[nodiscard]] std::uint64_t outer_steps() const noexcept { return outer_steps_; }

  /// Overwrite the local rank vector (size must match). Used to carry rank
  /// state across a link-graph swap (warm start on a mutated crawl).
  void set_ranks(std::span<const double> ranks);

  /// Wipe all runtime state — R, X, received slices, last-sent snapshots —
  /// as a crash-without-checkpoint does. The structural state (matrix,
  /// efferent blocks) survives; peers re-deliver X on their next sends.
  void reset_state();

  /// Register a cut edge (global u in this group) -> (global v in `dest`);
  /// local index of v within dest is `dest_local`. Called during engine
  /// wiring, before the first step.
  void add_efferent_edge(std::uint32_t dest_group, std::uint32_t dest_local,
                         std::uint32_t src_local, double weight);
  /// Sort/pack efferent blocks after all edges are added.
  void finalize_efferents();

  /// Destination groups this group ships Y slices to.
  [[nodiscard]] std::span<const std::uint32_t> efferent_destinations() const noexcept {
    return efferent_dests_;
  }

  /// Apply a received slice: each entry supersedes the stored value from
  /// that (source group, page) pair. This is the "Refresh X" of Algorithms
  /// 3/4 (the engine drains the network inbox into this). Keeps
  /// X = Σ_sources latest-per-entry exact for full and delta slices alike.
  void refresh_x(std::uint32_t source_group, const YSlice& slice);

  /// Graceful degradation on suspected peer death: scale every stored X
  /// contribution received from `source_group` by `factor` (in [0, 1]).
  /// The next genuine slice from that peer supersedes the decayed values
  /// entry-by-entry, exactly like any refresh.
  void scale_received(std::uint32_t source_group, double factor);

  /// Route all local iteration through the residual-driven worklist kernel
  /// (DESIGN.md §6). Call during wiring; the frontier state then persists
  /// across steps so converged rows stay skipped until their inputs move.
  /// With opts.epsilon == 0 every iterate is bitwise-identical to the dense
  /// kernels.
  void configure_worklist(const rank::WorklistOptions& opts);

  /// Frontier state (tallies of skipped/recomputed rows); for tests.
  [[nodiscard]] const rank::WorklistState& worklist_state() const noexcept {
    return wl_state_;
  }

  /// Portable slice of the worklist frontier: the per-source propagated
  /// contributions and the differ bitmap as of the last completed sweep.
  /// Together with the rank vector this is everything a successor group
  /// (same membership, updated links) needs to resume sparse sweeps without
  /// a dense re-prime (DESIGN.md §14).
  struct WorklistCarry {
    bool valid = false;
    std::vector<double> contrib;
    std::vector<std::uint64_t> differ;
  };

  /// Snapshot the frontier for an incremental graph swap. Returns an
  /// invalid carry when the group is not running a primed worklist on the
  /// current buffer pair (callers then fall back to a dense warm start).
  [[nodiscard]] WorklistCarry export_worklist_carry() const;

  /// Adopt rank state plus a predecessor's frontier after a link-only graph
  /// splice. `changed_sources_local` are local rows whose out-degree (and
  /// hence contribution weight) changed — they get differ bits so the next
  /// sweep re-propagates them; `changed_rows_local` are local rows whose
  /// in-neighborhood changed — they get forcing-dirty bits so they
  /// recompute. Falls back to set_ranks() (dense re-prime) and returns
  /// false when the carry does not fit this group or the worklist is not in
  /// exact mode; returns true when the frontier was installed. Call before
  /// any X re-priming so refresh_x() can record its own dirty rows.
  bool install_worklist_carry(std::span<const double> ranks, WorklistCarry carry,
                              std::span<const std::uint32_t> changed_rows_local,
                              std::span<const std::uint32_t> changed_sources_local);

  /// Force every row with any received X entry to recompute next sweep.
  /// After an incremental swap the fresh group's received_ map is re-primed
  /// from full Y slices; entries that land at bitwise 0.0 produce no
  /// refresh_x() delta yet may still supersede a nonzero pre-swap X, so the
  /// conservative mark keeps the frontier sound (recomputing a consistent
  /// row is bitwise-idempotent).
  void mark_all_received_dirty();

  /// DPR1 body: solve R = A·R + βE + X to `epsilon`, warm-started from the
  /// current R. Returns inner iterations used.
  std::size_t solve_to_convergence(double epsilon, std::size_t max_iterations,
                                   util::ThreadPool& pool);

  /// DPR2 body: exactly one Jacobi sweep of R = A·R + βE + X (fused
  /// contribution kernel; the sweep's residual is recorded, not recomputed).
  void sweep_once(util::ThreadPool& pool);

  /// L1 norm of (R_new − R_old) of the most recent sweep_once(); 0 before
  /// the first sweep. Lets DPR2 stability detection skip a second pass
  /// (and a snapshot copy) over R.
  [[nodiscard]] double last_sweep_delta() const noexcept { return last_sweep_delta_; }

  /// Compute the outgoing Y slice for one destination group from current R.
  /// With threshold > 0, entries whose value moved less than `threshold`
  /// since the last *committed* send to that group are omitted (delta
  /// sending — the paper's "reduce communication overhead" future work);
  /// never-sent entries are always included.
  [[nodiscard]] YSlice compute_y(std::uint32_t dest_group,
                                 double threshold = 0.0) const;

  /// Record that `slice` reached dest_group, so future thresholded sends
  /// diff against it. Call only on successful delivery — after a lost
  /// message the changes stay pending and ride the next slice.
  void commit_sent(std::uint32_t dest_group, const YSlice& slice);

  /// Count one completed loop step.
  void count_outer_step() noexcept { ++outer_steps_; }

  [[nodiscard]] const rank::LinkMatrix& matrix() const noexcept { return matrix_; }

 private:
  struct EfferentBlock {
    std::uint32_t dest_group = 0;
    // Parallel arrays, sorted by dst_local: one entry per cut edge.
    std::vector<std::uint32_t> dst_local;
    std::vector<std::uint32_t> src_local;
    std::vector<double> weight;  // alpha / d(src)
    // Last committed value per *distinct* destination page, aligned with
    // the runs of dst_local (filled by finalize_efferents / commit_sent).
    std::vector<std::uint32_t> unique_dst;
    std::vector<double> last_sent;  // NaN = never sent
  };

  [[nodiscard]] const EfferentBlock* find_block(std::uint32_t dest_group) const;
  [[nodiscard]] EfferentBlock* find_block(std::uint32_t dest_group);

  std::vector<graph::PageId> members_;
  rank::LinkMatrix matrix_;
  std::vector<double> beta_e_;          // βE(v) per local page
  std::vector<double> ranks_;           // R, local
  std::vector<double> x_;               // X, local (sum of latest slices)
  std::vector<double> forcing_;         // βE + X, kept in sync with x_
  std::vector<double> scratch_;         // sweep target
  rank::SweepScratch sweep_scratch_;    // contribution vector + partials
  bool worklist_enabled_ = false;       // route sweeps through the frontier kernel
  rank::WorklistOptions wl_opts_;
  rank::WorklistState wl_state_;        // frontier bitmaps, pinned to ranks_/scratch_
  double last_sweep_delta_ = 0.0;       // L1 residual of the last sweep_once
  std::vector<EfferentBlock> blocks_;   // sorted by dest_group
  std::vector<std::uint32_t> efferent_dests_;
  // Latest received value per (source group, local page) — patch semantics.
  std::unordered_map<std::uint32_t, std::unordered_map<std::uint32_t, double>>
      received_;
  std::uint64_t outer_steps_ = 0;
  bool finalized_ = false;
};

}  // namespace p2prank::engine
