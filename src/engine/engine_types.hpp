// Options and result types for the distributed page-ranking engine.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "overlay/overlay.hpp"
#include "transport/reliable.hpp"

namespace p2prank::obs {
class MetricsRegistry;
class Tracer;
}  // namespace p2prank::obs

namespace p2prank::engine {

/// One ranker group's slice of a snapshot cut: `ranks[i]` is the rank of
/// global page `members[i]`. Members are ascending (PageGroup keeps them
/// that way); the views alias live group state and are only valid while
/// the publish_groups call they were passed to is on the stack.
struct GroupCut {
  std::span<const std::uint32_t> members;
  std::span<const double> ranks;
};

/// Engine → serving handoff (DESIGN.md §12 "Serving contract"). The engine
/// pushes consistent (ranks, ownership) states into this interface at
/// loop-step boundaries; src/serve/ implements it with epoch-swapped
/// immutable snapshots that concurrent readers query without ever blocking
/// a sweep. The interface lives engine-side so the engine never links the
/// serving layer — the dependency points serve → engine only.
///
/// Every call happens on the simulation thread. Implementations that hand
/// the state to other threads (the whole point) own that synchronization.
class RankSnapshotSink {
 public:
  virtual ~RankSnapshotSink() = default;

  /// One consistent cut of the engine at virtual time `time`: the global
  /// rank vector and the page → ranker-group ownership map, with group ids
  /// in [0, num_shards). Called at construction, every snapshot_interval of
  /// virtual time at loop-step boundaries, and after every warm start
  /// (initial seeding, churn handoff, checkpoint restore) — so ownership
  /// changes are republished promptly. The spans are valid only for the
  /// duration of the call.
  virtual void publish(double time, std::span<const double> ranks,
                       std::span<const std::uint32_t> assignment,
                       std::uint32_t num_shards) = 0;

  /// Group-structured variant of publish(): one cut per ranker group, the
  /// group's shard id being its position in `groups`. Members are
  /// ascending global page ids (PageGroup's invariant) and groups
  /// partition the owned pages; pages in no group (post-crash orphans)
  /// read as unowned. This is the engine's publish path: handing the
  /// per-group views straight through lets the sink scatter into its own
  /// storage exactly once instead of the engine materializing dense
  /// vectors the sink would immediately re-copy and re-scan — the
  /// difference between blowing and meeting the < 5% serving overhead
  /// budget at 50k+ pages. Same validity contract as publish(): the spans
  /// die when the call returns. Default: materialize and forward.
  ///
  /// `ownership_version` is a monotone counter the publisher bumps whenever
  /// the page → group map changes (0 = unknown). Ranks change every
  /// publish but ownership almost never does, so sinks may keep
  /// ownership-derived state (dense shard maps, shard page counts) from
  /// any earlier publish with the same nonzero version instead of
  /// rewriting it.
  virtual void publish_groups(double time, std::span<const GroupCut> groups,
                              std::uint32_t num_pages,
                              std::uint64_t ownership_version) {
    static_cast<void>(ownership_version);  // the dense path always rebuilds
    std::vector<double> ranks(num_pages, 0.0);
    std::vector<std::uint32_t> assignment(num_pages, UINT32_MAX);
    for (std::size_t sh = 0; sh < groups.size(); ++sh) {
      for (std::size_t i = 0; i < groups[sh].members.size(); ++i) {
        ranks[groups[sh].members[i]] = groups[sh].ranks[i];
        assignment[groups[sh].members[i]] = static_cast<std::uint32_t>(sh);
      }
    }
    publish(time, ranks, assignment, static_cast<std::uint32_t>(groups.size()));
  }

  /// Every previously published epoch is now a lie: a checkpoint restore
  /// rolled the engine back past it (the serving twin of drop_in_flight()'s
  /// in-flight-slice rollback). Implementations mark published state stale
  /// but keep serving it — availability over freshness — until the next
  /// publish supersedes it.
  virtual void invalidate(double time) = 0;
};

// (The paper's Section 3: "The case when E is not uniform over pages can be
// used for personalized page ranking" — EngineOptions::personalization wires
// exactly that through the distributed engine.)

/// Which of the paper's two algorithms a ranker runs per loop step.
enum class Algorithm {
  /// DPR1 (Algorithm 3): refresh X, solve the local system to convergence
  /// (GroupPageRank), then send Y.
  kDPR1,
  /// DPR2 (Algorithm 4): refresh X, do exactly one Jacobi sweep, send Y
  /// eagerly.
  kDPR2,
};

/// Reliable-exchange configuration (see src/transport/reliable.hpp and
/// DESIGN.md §8 "Reliable exchange contract"). The paper ships Y slices
/// fire-and-forget; these knobs add the reliability layer it hand-waves.
struct ReliabilityOptions {
  /// Stamp every Y slice with a per-(src,dst) epoch and reject stale
  /// reordered slices at the receiver (counted in duplicates_rejected()).
  /// Without this, jittered latency lets a delayed older Y silently replace
  /// a newer X entry.
  bool epochs = false;
  /// Acknowledge delivered slices and retransmit unacked ones with
  /// exponential backoff + jitter. Implies `epochs` (retransmission without
  /// the duplicate filter would double-apply). Only the newest epoch per
  /// peer is buffered/retransmitted — superseded slices are dropped, so the
  /// buffer is O(1) per peer.
  bool retransmit = false;
  /// One-way virtual-time delay of an ack message.
  double ack_latency = 0.1;
  /// Delivery probability of acks. Negative = same as the data channel's
  /// delivery_probability (the default); settable separately so the chaos
  /// harness can inject ack-only loss.
  double ack_delivery_probability = -1.0;
  /// Retransmit timeout schedule: first timeout, multiplier per attempt,
  /// cap, and multiplicative jitter (delay = rto * (1 + U[0, jitter))).
  double rto_initial = 1.0;
  double rto_backoff = 2.0;
  double rto_max = 8.0;
  double rto_jitter = 0.25;
  /// Consecutive unacked retransmit timers before the peer is suspected
  /// dead; a suspected peer's retransmits are parked (fresh sends still go
  /// out and double as probes; any ack or received data un-suspects).
  std::uint32_t suspicion_after = 4;
  /// Graceful degradation: when a peer becomes suspected, scale its stored
  /// contribution to this ranker's X by this factor (applied once per
  /// suspicion event). 1 (default) keeps the last value in force — the only
  /// setting under which Thm 4.1 monotonicity survives a suspicion.
  double suspect_decay = 1.0;
};

struct EngineOptions {
  Algorithm algorithm = Algorithm::kDPR1;
  double alpha = 0.85;

  /// Inner-loop termination for DPR1's GroupPageRank call (L1 delta).
  double inner_epsilon = 1e-12;
  std::size_t inner_max_iterations = 500;

  /// Probability a Y message actually reaches its destination (the paper's
  /// p, read as delivery probability).
  double delivery_probability = 1.0;

  /// Wait-time interval: each group's mean wait is drawn from [t1, t2];
  /// waits are exponential with that mean (Section 5's Tw(u, m)).
  double t1 = 0.0;
  double t2 = 6.0;

  /// Virtual-time delay between a send and its arrival. The paper's
  /// experiments fold network delay into the waits, so 0 is the default.
  /// Ignored when `overlay` is set.
  double delivery_latency = 0.0;

  /// Additional per-message delivery delay drawn uniformly from
  /// [0, latency_jitter). Nonzero jitter reorders messages on the same
  /// (src, dst) pair — exactly the hazard ReliabilityOptions::epochs
  /// guards against. Applies on top of delivery_latency / overlay hops.
  double latency_jitter = 0.0;

  /// Reliable-exchange layer (epochs, ack/retransmit, failure detection).
  /// Default-constructed = fire-and-forget, the paper's channel.
  ReliabilityOptions reliability;

  /// Full-stack mode: route every Y message over this overlay (ranker i
  /// lives on overlay node i; requires overlay->num_nodes() >= k). Delivery
  /// latency becomes per_hop_latency × route hops — indirect transmission's
  /// timing (Section 4.4) instead of an abstract channel. The overlay must
  /// outlive the engine. nullptr (default) keeps the paper's abstract
  /// channel.
  const overlay::Overlay* overlay = nullptr;
  double per_hop_latency = 0.5;

  /// Distributed termination detection (the paper's algorithms loop
  /// "while true"; a deployment needs a stopping rule that uses only local
  /// information). When > 0, every ranker reports after each loop step
  /// whether the step changed its rank vector by at most this L1 amount; a
  /// coordinator ranker declares convergence the first time every
  /// non-empty group's latest report is "stable". Status messages are
  /// small, reliable (think TCP), and counted separately. 0 disables.
  double stability_epsilon = 0.0;

  /// Residual-driven worklist sweeps (DESIGN.md §6): route every group's
  /// local iteration through the frontier kernel, so rows whose inputs did
  /// not change since the last sweep are skipped. With worklist_epsilon == 0
  /// (the default) all results stay bitwise-identical to the dense kernels.
  bool worklist = false;

  /// Contribution-change threshold of the worklist kernel: a source whose
  /// contribution drifted by at most this since it last propagated does not
  /// wake its destination rows. 0 = exact (bitwise) mode; > 0 trades a
  /// bounded rank drift — flushed every worklist_full_interval sweeps — for
  /// a smaller frontier.
  double worklist_epsilon = 0.0;

  /// Dense-sweep cadence of the worklist kernel: every Nth sweep recomputes
  /// all rows, bounding the drift worklist_epsilon can accumulate and
  /// re-anchoring the reported residuals. Must be >= 1 when
  /// worklist_epsilon > 0; 0 disables periodic refresh.
  std::uint32_t worklist_full_interval = 64;

  /// Delta-send threshold (the paper's "explore more methods for reducing
  /// communication overhead" future work): a Y entry is only transmitted
  /// when its value moved at least this much since the last delivered send.
  /// 0 sends full slices every step (the paper's algorithms as written).
  /// Nonzero saves most records late in convergence at the price of a
  /// relative-error floor on the order of threshold·(cut entries)/||R*||.
  double send_threshold = 0.0;

  /// Per-page E vector for personalized ranking (Section 3). Empty means
  /// the uniform E(v) = 1 of the paper's experiments; otherwise must have
  /// one non-negative entry per page of the graph.
  std::vector<double> personalization;

  /// Chaos-harness self-test ONLY (src/check): when set to a valid group
  /// index, that group's afferent-update path is dead — it silently drops
  /// its inbox instead of refreshing X and ignores warm-start priming (so
  /// churn / restore state transfers cannot heal it). A deliberately broken
  /// engine the scenario checker must flag: its ranks converge to a too-low
  /// fixed point, failing the convergence invariant. If the group departs
  /// in churn, its successor inherits the fault. The default (no group)
  /// leaves the engine correct.
  std::uint32_t fault_skip_refresh_group = UINT32_MAX;

  /// Observability (DESIGN.md §11): when non-null, the engine publishes its
  /// counters/gauges/histograms into this registry and emits virtual-time
  /// trace events into this tracer. Both must outlive the engine. Pure
  /// observation — enabling them never changes rank results, RNG streams,
  /// or event ordering. nullptr (default) = off, zero overhead.
  obs::MetricsRegistry* metrics = nullptr;
  obs::Tracer* tracer = nullptr;

  /// Rank serving (DESIGN.md §12): when non-null, the engine publishes a
  /// consistent (global ranks, ownership) state into this sink — at
  /// construction, then every snapshot_interval of virtual time at loop-step
  /// boundaries, and after every warm start (so churn handoffs and restores
  /// republish the new ownership immediately) — and calls invalidate() from
  /// drop_in_flight() (a restore is a global rollback; published epochs from
  /// the rolled-back timeline are stale). Pure observation: attaching a sink
  /// never changes rank results, RNG streams, or event ordering. Must
  /// outlive the engine. nullptr (default) = serving off, zero overhead.
  RankSnapshotSink* snapshot_sink = nullptr;
  /// Virtual-time cadence of snapshot publication (snapshot_sink only).
  double snapshot_interval = 1.0;

  std::uint64_t seed = 7;
};

/// One point of the Fig. 6 / Fig. 7 time series.
struct Sample {
  double time = 0.0;
  /// ||R - R*||_1 / ||R*||_1 against the centralized reference.
  double relative_error = 0.0;
  /// Mean rank over all pages (Fig. 7's y-axis).
  double average_rank = 0.0;
  /// min over pages of (rank_now - rank_at_previous_sample): >= 0 iff the
  /// sequence stayed monotone since the last sample (Theorem 4.1's claim).
  double min_rank_delta = 0.0;
  /// Total outer loop steps executed across all groups so far.
  std::uint64_t total_outer_steps = 0;
};

struct ConvergenceResult {
  bool reached = false;
  double time = 0.0;
  /// Mean outer loop steps per (non-empty) group when the threshold was
  /// first met — the paper's Fig. 8 y-axis.
  double mean_outer_steps = 0.0;
  std::uint64_t max_outer_steps = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_lost = 0;
  std::uint64_t records_sent = 0;  ///< fresh cut-link <from,to,score> records
  /// Reliable-exchange traffic (0 with the fire-and-forget channel).
  /// Retransmitted records are accounted here, never in records_sent — the
  /// §4.5 cost model's W is fresh records only.
  std::uint64_t retransmit_records = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t acks_sent = 0;
  std::uint64_t duplicates_rejected = 0;
  double final_relative_error = 0.0;
};

}  // namespace p2prank::engine
