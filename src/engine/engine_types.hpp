// Options and result types for the distributed page-ranking engine.
#pragma once

#include <cstdint>
#include <vector>

#include "overlay/overlay.hpp"

namespace p2prank::engine {

// (The paper's Section 3: "The case when E is not uniform over pages can be
// used for personalized page ranking" — EngineOptions::personalization wires
// exactly that through the distributed engine.)

/// Which of the paper's two algorithms a ranker runs per loop step.
enum class Algorithm {
  /// DPR1 (Algorithm 3): refresh X, solve the local system to convergence
  /// (GroupPageRank), then send Y.
  kDPR1,
  /// DPR2 (Algorithm 4): refresh X, do exactly one Jacobi sweep, send Y
  /// eagerly.
  kDPR2,
};

struct EngineOptions {
  Algorithm algorithm = Algorithm::kDPR1;
  double alpha = 0.85;

  /// Inner-loop termination for DPR1's GroupPageRank call (L1 delta).
  double inner_epsilon = 1e-12;
  std::size_t inner_max_iterations = 500;

  /// Probability a Y message actually reaches its destination (the paper's
  /// p, read as delivery probability).
  double delivery_probability = 1.0;

  /// Wait-time interval: each group's mean wait is drawn from [t1, t2];
  /// waits are exponential with that mean (Section 5's Tw(u, m)).
  double t1 = 0.0;
  double t2 = 6.0;

  /// Virtual-time delay between a send and its arrival. The paper's
  /// experiments fold network delay into the waits, so 0 is the default.
  /// Ignored when `overlay` is set.
  double delivery_latency = 0.0;

  /// Full-stack mode: route every Y message over this overlay (ranker i
  /// lives on overlay node i; requires overlay->num_nodes() >= k). Delivery
  /// latency becomes per_hop_latency × route hops — indirect transmission's
  /// timing (Section 4.4) instead of an abstract channel. The overlay must
  /// outlive the engine. nullptr (default) keeps the paper's abstract
  /// channel.
  const overlay::Overlay* overlay = nullptr;
  double per_hop_latency = 0.5;

  /// Distributed termination detection (the paper's algorithms loop
  /// "while true"; a deployment needs a stopping rule that uses only local
  /// information). When > 0, every ranker reports after each loop step
  /// whether the step changed its rank vector by at most this L1 amount; a
  /// coordinator ranker declares convergence the first time every
  /// non-empty group's latest report is "stable". Status messages are
  /// small, reliable (think TCP), and counted separately. 0 disables.
  double stability_epsilon = 0.0;

  /// Delta-send threshold (the paper's "explore more methods for reducing
  /// communication overhead" future work): a Y entry is only transmitted
  /// when its value moved at least this much since the last delivered send.
  /// 0 sends full slices every step (the paper's algorithms as written).
  /// Nonzero saves most records late in convergence at the price of a
  /// relative-error floor on the order of threshold·(cut entries)/||R*||.
  double send_threshold = 0.0;

  /// Per-page E vector for personalized ranking (Section 3). Empty means
  /// the uniform E(v) = 1 of the paper's experiments; otherwise must have
  /// one non-negative entry per page of the graph.
  std::vector<double> personalization;

  /// Chaos-harness self-test ONLY (src/check): when set to a valid group
  /// index, that group silently drops its inbox instead of refreshing X —
  /// a deliberately broken engine the scenario checker must flag (its ranks
  /// converge to a too-low fixed point, failing the convergence invariant).
  /// The default (no group) leaves the engine correct.
  std::uint32_t fault_skip_refresh_group = UINT32_MAX;

  std::uint64_t seed = 7;
};

/// One point of the Fig. 6 / Fig. 7 time series.
struct Sample {
  double time = 0.0;
  /// ||R - R*||_1 / ||R*||_1 against the centralized reference.
  double relative_error = 0.0;
  /// Mean rank over all pages (Fig. 7's y-axis).
  double average_rank = 0.0;
  /// min over pages of (rank_now - rank_at_previous_sample): >= 0 iff the
  /// sequence stayed monotone since the last sample (Theorem 4.1's claim).
  double min_rank_delta = 0.0;
  /// Total outer loop steps executed across all groups so far.
  std::uint64_t total_outer_steps = 0;
};

struct ConvergenceResult {
  bool reached = false;
  double time = 0.0;
  /// Mean outer loop steps per (non-empty) group when the threshold was
  /// first met — the paper's Fig. 8 y-axis.
  double mean_outer_steps = 0.0;
  std::uint64_t max_outer_steps = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_lost = 0;
  std::uint64_t records_sent = 0;  ///< cut-link <from,to,score> records
  double final_relative_error = 0.0;
};

}  // namespace p2prank::engine
