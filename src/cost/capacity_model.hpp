// Closed-form communication-cost and capacity model (Sections 4.4–4.5).
//
// Formulas, with N rankers, W pages, l bytes per <url_from,url_to,score>
// record, r bytes per lookup message, h mean overlay hops, g mean neighbors:
//
//   (4.1)  D_it = h·l·W            bytes/iteration, indirect
//   (4.2)  D_dt = l·W + h·r·N²     bytes/iteration, direct (lookups!)
//   (4.3)  S_it = g·N              messages/iteration, indirect
//   (4.4)  S_dt = (h+1)·N²         messages/iteration, direct
//   (4.6)  T    > D_it / bisection_bandwidth      (min iteration interval)
//   (4.7)  B    ≥ D_it / (N·T)                    (min node bottleneck bw)
//
// Table 1 instantiates these at W = 3 billion pages, l = 100 B, one percent
// of the 1999 U.S. backbone bisection (100 MB/s), and Pastry's measured
// hop counts h = 2.5 / 3.5 / 4.0 for N = 1e3 / 1e4 / 1e5.
#pragma once

#include <cstdint>
#include <vector>

namespace p2prank::cost {

struct CostParameters {
  double total_pages = 3e9;            ///< W — "Google indexes more than 3B"
  double record_bytes = 100.0;         ///< l
  double lookup_bytes = 50.0;          ///< r
  double bisection_bandwidth = 100e6;  ///< bytes/s usable by page ranking
  double mean_neighbors = 32.0;        ///< g ("roughly some dozens")
};

/// Expected Pastry route length log_{2^b}(N).
[[nodiscard]] double pastry_expected_hops(double num_nodes, int bits_per_digit = 4);

/// The hop counts the paper quotes (Pastry paper measurements) for
/// N = 1000 / 10000 / 100000; other N fall back to pastry_expected_hops.
[[nodiscard]] double paper_pastry_hops(std::uint64_t num_nodes);

struct TransmissionCost {
  double bytes = 0.0;
  double messages = 0.0;
};

/// Formulas 4.1 / 4.3.
[[nodiscard]] TransmissionCost indirect_cost(double num_rankers, double hops,
                                             const CostParameters& p);

/// Formulas 4.2 / 4.4.
[[nodiscard]] TransmissionCost direct_cost(double num_rankers, double hops,
                                           const CostParameters& p);

/// Formula 4.6: minimal seconds between iterations given the bisection
/// bandwidth budget.
[[nodiscard]] double min_iteration_interval(double hops, const CostParameters& p);

/// Formula 4.7: minimal per-node bottleneck bandwidth (bytes/s) given an
/// iteration interval T.
[[nodiscard]] double min_node_bandwidth(double num_rankers, double hops,
                                        double interval_seconds,
                                        const CostParameters& p);

/// One row of Table 1.
struct CapacityRow {
  std::uint64_t num_rankers = 0;
  double hops = 0.0;
  double min_interval_seconds = 0.0;   ///< "Time per Iteration"
  double min_node_bandwidth = 0.0;     ///< "Bottleneck Bandwidth Needed", B/s
};

/// Regenerate Table 1 (defaults to the paper's N = 1e3, 1e4, 1e5).
[[nodiscard]] std::vector<CapacityRow> table1(
    const CostParameters& p = {},
    const std::vector<std::uint64_t>& ranker_counts = {1000, 10000, 100000});

/// Smallest N at which indirect transmission ships fewer bytes than direct
/// (the crossover the paper's "direct seems better only for small N" refers
/// to). Scans doubling N; returns 0 when indirect never wins below 2^40.
[[nodiscard]] std::uint64_t byte_crossover_n(const CostParameters& p,
                                             int bits_per_digit = 4);

}  // namespace p2prank::cost
