#include "cost/capacity_model.hpp"

#include <cmath>
#include <stdexcept>

namespace p2prank::cost {

double pastry_expected_hops(double num_nodes, int bits_per_digit) {
  if (num_nodes < 1.0) throw std::invalid_argument("pastry hops: N < 1");
  if (bits_per_digit < 1) throw std::invalid_argument("pastry hops: b < 1");
  if (num_nodes == 1.0) return 0.0;
  return std::log2(num_nodes) / static_cast<double>(bits_per_digit);
}

double paper_pastry_hops(std::uint64_t num_nodes) {
  switch (num_nodes) {
    case 1000: return 2.5;
    case 10000: return 3.5;
    case 100000: return 4.0;
    default: return pastry_expected_hops(static_cast<double>(num_nodes));
  }
}

TransmissionCost indirect_cost(double num_rankers, double hops,
                               const CostParameters& p) {
  TransmissionCost c;
  c.bytes = hops * p.record_bytes * p.total_pages;       // 4.1
  c.messages = p.mean_neighbors * num_rankers;           // 4.3
  return c;
}

TransmissionCost direct_cost(double num_rankers, double hops,
                             const CostParameters& p) {
  TransmissionCost c;
  const double n2 = num_rankers * num_rankers;
  c.bytes = p.record_bytes * p.total_pages + hops * p.lookup_bytes * n2;  // 4.2
  c.messages = (hops + 1.0) * n2;                                         // 4.4
  return c;
}

double min_iteration_interval(double hops, const CostParameters& p) {
  if (p.bisection_bandwidth <= 0.0) {
    throw std::invalid_argument("capacity: bisection bandwidth must be positive");
  }
  return hops * p.record_bytes * p.total_pages / p.bisection_bandwidth;  // 4.6
}

double min_node_bandwidth(double num_rankers, double hops, double interval_seconds,
                          const CostParameters& p) {
  if (num_rankers <= 0.0 || interval_seconds <= 0.0) {
    throw std::invalid_argument("capacity: N and T must be positive");
  }
  const double d_it = hops * p.record_bytes * p.total_pages;
  return d_it / (num_rankers * interval_seconds);  // 4.7
}

std::vector<CapacityRow> table1(const CostParameters& p,
                                const std::vector<std::uint64_t>& ranker_counts) {
  std::vector<CapacityRow> rows;
  rows.reserve(ranker_counts.size());
  for (const std::uint64_t n : ranker_counts) {
    CapacityRow row;
    row.num_rankers = n;
    row.hops = paper_pastry_hops(n);
    row.min_interval_seconds = min_iteration_interval(row.hops, p);
    row.min_node_bandwidth = min_node_bandwidth(
        static_cast<double>(n), row.hops, row.min_interval_seconds, p);
    rows.push_back(row);
  }
  return rows;
}

std::uint64_t byte_crossover_n(const CostParameters& p, int bits_per_digit) {
  // At h <= 1 hop, indirect degenerates to direct-without-lookups and wins
  // trivially; with h > 1 it pays (h-1)·l·W extra and loses until the
  // lookup term h·r·N² catches up. Return the N above which indirect wins
  // *for good*: one past the largest N where direct still ships fewer bytes.
  std::uint64_t last_direct_win = 0;
  for (std::uint64_t n = 2; n <= (1ULL << 40); n *= 2) {
    // A routed message always takes at least one hop; the log law dips
    // below 1 for overlays smaller than one digit's fan-out.
    const double h = std::max(
        1.0, pastry_expected_hops(static_cast<double>(n), bits_per_digit));
    const auto ind = indirect_cost(static_cast<double>(n), h, p);
    const auto dir = direct_cost(static_cast<double>(n), h, p);
    if (dir.bytes <= ind.bytes) last_direct_win = n;
  }
  if (last_direct_win == 0) return 2;  // indirect wins everywhere
  return last_direct_win >= (1ULL << 40) ? 0 : last_direct_win * 2;
}

}  // namespace p2prank::cost
