file(REMOVE_RECURSE
  "../examples/overlay_playground"
  "../examples/overlay_playground.pdb"
  "CMakeFiles/overlay_playground.dir/overlay_playground.cpp.o"
  "CMakeFiles/overlay_playground.dir/overlay_playground.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overlay_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
