# Empty compiler generated dependencies file for overlay_playground.
# This may be replaced when dependencies are built.
