file(REMOVE_RECURSE
  "../examples/search_engine_ranking"
  "../examples/search_engine_ranking.pdb"
  "CMakeFiles/search_engine_ranking.dir/search_engine_ranking.cpp.o"
  "CMakeFiles/search_engine_ranking.dir/search_engine_ranking.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/search_engine_ranking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
