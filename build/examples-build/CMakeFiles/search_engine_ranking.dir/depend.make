# Empty dependencies file for search_engine_ranking.
# This may be replaced when dependencies are built.
