
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/capacity_planner.cpp" "examples-build/CMakeFiles/capacity_planner.dir/capacity_planner.cpp.o" "gcc" "examples-build/CMakeFiles/capacity_planner.dir/capacity_planner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cost/CMakeFiles/p2prank_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/crawl/CMakeFiles/p2prank_crawl.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/p2prank_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/p2prank_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/overlay/CMakeFiles/p2prank_overlay.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/p2prank_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/rank/CMakeFiles/p2prank_rank.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/p2prank_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/p2prank_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/p2prank_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
