file(REMOVE_RECURSE
  "../examples/dynamic_crawl"
  "../examples/dynamic_crawl.pdb"
  "CMakeFiles/dynamic_crawl.dir/dynamic_crawl.cpp.o"
  "CMakeFiles/dynamic_crawl.dir/dynamic_crawl.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_crawl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
