# Empty compiler generated dependencies file for dynamic_crawl.
# This may be replaced when dependencies are built.
