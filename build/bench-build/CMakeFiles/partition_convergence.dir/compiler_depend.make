# Empty compiler generated dependencies file for partition_convergence.
# This may be replaced when dependencies are built.
