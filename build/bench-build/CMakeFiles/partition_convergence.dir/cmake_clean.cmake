file(REMOVE_RECURSE
  "../bench/partition_convergence"
  "../bench/partition_convergence.pdb"
  "CMakeFiles/partition_convergence.dir/partition_convergence.cpp.o"
  "CMakeFiles/partition_convergence.dir/partition_convergence.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partition_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
