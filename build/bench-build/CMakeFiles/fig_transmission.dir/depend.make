# Empty dependencies file for fig_transmission.
# This may be replaced when dependencies are built.
