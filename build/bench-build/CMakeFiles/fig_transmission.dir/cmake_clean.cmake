file(REMOVE_RECURSE
  "../bench/fig_transmission"
  "../bench/fig_transmission.pdb"
  "CMakeFiles/fig_transmission.dir/fig_transmission.cpp.o"
  "CMakeFiles/fig_transmission.dir/fig_transmission.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_transmission.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
