# Empty dependencies file for fig6_relative_error.
# This may be replaced when dependencies are built.
