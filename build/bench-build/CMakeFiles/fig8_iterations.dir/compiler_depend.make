# Empty compiler generated dependencies file for fig8_iterations.
# This may be replaced when dependencies are built.
