file(REMOVE_RECURSE
  "../bench/fig8_iterations"
  "../bench/fig8_iterations.pdb"
  "CMakeFiles/fig8_iterations.dir/fig8_iterations.cpp.o"
  "CMakeFiles/fig8_iterations.dir/fig8_iterations.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_iterations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
