# Empty dependencies file for ablation_inner_eps.
# This may be replaced when dependencies are built.
