file(REMOVE_RECURSE
  "../bench/ablation_inner_eps"
  "../bench/ablation_inner_eps.pdb"
  "CMakeFiles/ablation_inner_eps.dir/ablation_inner_eps.cpp.o"
  "CMakeFiles/ablation_inner_eps.dir/ablation_inner_eps.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_inner_eps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
