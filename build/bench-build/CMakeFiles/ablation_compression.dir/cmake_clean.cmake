file(REMOVE_RECURSE
  "../bench/ablation_compression"
  "../bench/ablation_compression.pdb"
  "CMakeFiles/ablation_compression.dir/ablation_compression.cpp.o"
  "CMakeFiles/ablation_compression.dir/ablation_compression.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
