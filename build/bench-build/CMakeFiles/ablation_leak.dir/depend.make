# Empty dependencies file for ablation_leak.
# This may be replaced when dependencies are built.
