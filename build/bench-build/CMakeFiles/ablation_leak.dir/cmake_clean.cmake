file(REMOVE_RECURSE
  "../bench/ablation_leak"
  "../bench/ablation_leak.pdb"
  "CMakeFiles/ablation_leak.dir/ablation_leak.cpp.o"
  "CMakeFiles/ablation_leak.dir/ablation_leak.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_leak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
