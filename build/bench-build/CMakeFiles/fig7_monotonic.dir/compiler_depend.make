# Empty compiler generated dependencies file for fig7_monotonic.
# This may be replaced when dependencies are built.
