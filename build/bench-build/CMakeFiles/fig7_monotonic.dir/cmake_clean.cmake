file(REMOVE_RECURSE
  "../bench/fig7_monotonic"
  "../bench/fig7_monotonic.pdb"
  "CMakeFiles/fig7_monotonic.dir/fig7_monotonic.cpp.o"
  "CMakeFiles/fig7_monotonic.dir/fig7_monotonic.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_monotonic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
