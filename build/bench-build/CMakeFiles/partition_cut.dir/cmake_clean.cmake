file(REMOVE_RECURSE
  "../bench/partition_cut"
  "../bench/partition_cut.pdb"
  "CMakeFiles/partition_cut.dir/partition_cut.cpp.o"
  "CMakeFiles/partition_cut.dir/partition_cut.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partition_cut.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
