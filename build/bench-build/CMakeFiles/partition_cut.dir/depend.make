# Empty dependencies file for partition_cut.
# This may be replaced when dependencies are built.
