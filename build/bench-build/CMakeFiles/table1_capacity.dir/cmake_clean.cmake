file(REMOVE_RECURSE
  "../bench/table1_capacity"
  "../bench/table1_capacity.pdb"
  "CMakeFiles/table1_capacity.dir/table1_capacity.cpp.o"
  "CMakeFiles/table1_capacity.dir/table1_capacity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
