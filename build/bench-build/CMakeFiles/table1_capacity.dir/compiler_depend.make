# Empty compiler generated dependencies file for table1_capacity.
# This may be replaced when dependencies are built.
