# Empty dependencies file for overlay_node_id_test.
# This may be replaced when dependencies are built.
