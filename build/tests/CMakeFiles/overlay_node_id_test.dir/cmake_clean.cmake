file(REMOVE_RECURSE
  "CMakeFiles/overlay_node_id_test.dir/overlay_node_id_test.cpp.o"
  "CMakeFiles/overlay_node_id_test.dir/overlay_node_id_test.cpp.o.d"
  "overlay_node_id_test"
  "overlay_node_id_test.pdb"
  "overlay_node_id_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overlay_node_id_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
