# Empty compiler generated dependencies file for rank_centralized_test.
# This may be replaced when dependencies are built.
