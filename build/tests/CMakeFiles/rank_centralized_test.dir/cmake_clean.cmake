file(REMOVE_RECURSE
  "CMakeFiles/rank_centralized_test.dir/rank_centralized_test.cpp.o"
  "CMakeFiles/rank_centralized_test.dir/rank_centralized_test.cpp.o.d"
  "rank_centralized_test"
  "rank_centralized_test.pdb"
  "rank_centralized_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rank_centralized_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
