file(REMOVE_RECURSE
  "CMakeFiles/crawl_test.dir/crawl_test.cpp.o"
  "CMakeFiles/crawl_test.dir/crawl_test.cpp.o.d"
  "crawl_test"
  "crawl_test.pdb"
  "crawl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crawl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
