file(REMOVE_RECURSE
  "CMakeFiles/transport_wire_test.dir/transport_wire_test.cpp.o"
  "CMakeFiles/transport_wire_test.dir/transport_wire_test.cpp.o.d"
  "transport_wire_test"
  "transport_wire_test.pdb"
  "transport_wire_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transport_wire_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
