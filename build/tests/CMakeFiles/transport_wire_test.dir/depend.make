# Empty dependencies file for transport_wire_test.
# This may be replaced when dependencies are built.
