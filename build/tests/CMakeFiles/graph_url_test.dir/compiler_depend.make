# Empty compiler generated dependencies file for graph_url_test.
# This may be replaced when dependencies are built.
