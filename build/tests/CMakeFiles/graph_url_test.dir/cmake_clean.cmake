file(REMOVE_RECURSE
  "CMakeFiles/graph_url_test.dir/graph_url_test.cpp.o"
  "CMakeFiles/graph_url_test.dir/graph_url_test.cpp.o.d"
  "graph_url_test"
  "graph_url_test.pdb"
  "graph_url_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_url_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
