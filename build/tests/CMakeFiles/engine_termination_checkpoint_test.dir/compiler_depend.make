# Empty compiler generated dependencies file for engine_termination_checkpoint_test.
# This may be replaced when dependencies are built.
