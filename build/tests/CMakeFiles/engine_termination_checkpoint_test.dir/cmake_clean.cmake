file(REMOVE_RECURSE
  "CMakeFiles/engine_termination_checkpoint_test.dir/engine_termination_checkpoint_test.cpp.o"
  "CMakeFiles/engine_termination_checkpoint_test.dir/engine_termination_checkpoint_test.cpp.o.d"
  "engine_termination_checkpoint_test"
  "engine_termination_checkpoint_test.pdb"
  "engine_termination_checkpoint_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_termination_checkpoint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
