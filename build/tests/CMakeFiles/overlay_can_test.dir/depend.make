# Empty dependencies file for overlay_can_test.
# This may be replaced when dependencies are built.
