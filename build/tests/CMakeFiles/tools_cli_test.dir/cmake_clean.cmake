file(REMOVE_RECURSE
  "CMakeFiles/tools_cli_test.dir/tools_cli_test.cpp.o"
  "CMakeFiles/tools_cli_test.dir/tools_cli_test.cpp.o.d"
  "tools_cli_test"
  "tools_cli_test.pdb"
  "tools_cli_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tools_cli_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
