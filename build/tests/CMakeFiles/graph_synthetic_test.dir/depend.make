# Empty dependencies file for graph_synthetic_test.
# This may be replaced when dependencies are built.
