file(REMOVE_RECURSE
  "CMakeFiles/graph_synthetic_test.dir/graph_synthetic_test.cpp.o"
  "CMakeFiles/graph_synthetic_test.dir/graph_synthetic_test.cpp.o.d"
  "graph_synthetic_test"
  "graph_synthetic_test.pdb"
  "graph_synthetic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_synthetic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
