file(REMOVE_RECURSE
  "CMakeFiles/engine_fullstack_test.dir/engine_fullstack_test.cpp.o"
  "CMakeFiles/engine_fullstack_test.dir/engine_fullstack_test.cpp.o.d"
  "engine_fullstack_test"
  "engine_fullstack_test.pdb"
  "engine_fullstack_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_fullstack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
