# Empty dependencies file for engine_fullstack_test.
# This may be replaced when dependencies are built.
