file(REMOVE_RECURSE
  "CMakeFiles/rank_open_system_test.dir/rank_open_system_test.cpp.o"
  "CMakeFiles/rank_open_system_test.dir/rank_open_system_test.cpp.o.d"
  "rank_open_system_test"
  "rank_open_system_test.pdb"
  "rank_open_system_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rank_open_system_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
