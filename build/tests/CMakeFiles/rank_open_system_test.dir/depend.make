# Empty dependencies file for rank_open_system_test.
# This may be replaced when dependencies are built.
