file(REMOVE_RECURSE
  "CMakeFiles/rank_acceleration_test.dir/rank_acceleration_test.cpp.o"
  "CMakeFiles/rank_acceleration_test.dir/rank_acceleration_test.cpp.o.d"
  "rank_acceleration_test"
  "rank_acceleration_test.pdb"
  "rank_acceleration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rank_acceleration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
