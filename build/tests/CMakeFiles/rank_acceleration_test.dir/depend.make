# Empty dependencies file for rank_acceleration_test.
# This may be replaced when dependencies are built.
