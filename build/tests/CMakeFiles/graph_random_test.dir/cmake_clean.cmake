file(REMOVE_RECURSE
  "CMakeFiles/graph_random_test.dir/graph_random_test.cpp.o"
  "CMakeFiles/graph_random_test.dir/graph_random_test.cpp.o.d"
  "graph_random_test"
  "graph_random_test.pdb"
  "graph_random_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_random_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
