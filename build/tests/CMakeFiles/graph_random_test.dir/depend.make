# Empty dependencies file for graph_random_test.
# This may be replaced when dependencies are built.
