# Empty dependencies file for graph_updates_test.
# This may be replaced when dependencies are built.
