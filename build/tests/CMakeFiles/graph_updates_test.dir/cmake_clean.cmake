file(REMOVE_RECURSE
  "CMakeFiles/graph_updates_test.dir/graph_updates_test.cpp.o"
  "CMakeFiles/graph_updates_test.dir/graph_updates_test.cpp.o.d"
  "graph_updates_test"
  "graph_updates_test.pdb"
  "graph_updates_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_updates_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
