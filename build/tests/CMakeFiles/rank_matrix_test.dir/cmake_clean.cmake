file(REMOVE_RECURSE
  "CMakeFiles/rank_matrix_test.dir/rank_matrix_test.cpp.o"
  "CMakeFiles/rank_matrix_test.dir/rank_matrix_test.cpp.o.d"
  "rank_matrix_test"
  "rank_matrix_test.pdb"
  "rank_matrix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rank_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
