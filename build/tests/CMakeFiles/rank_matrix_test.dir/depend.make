# Empty dependencies file for rank_matrix_test.
# This may be replaced when dependencies are built.
