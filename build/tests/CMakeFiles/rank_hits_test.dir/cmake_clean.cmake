file(REMOVE_RECURSE
  "CMakeFiles/rank_hits_test.dir/rank_hits_test.cpp.o"
  "CMakeFiles/rank_hits_test.dir/rank_hits_test.cpp.o.d"
  "rank_hits_test"
  "rank_hits_test.pdb"
  "rank_hits_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rank_hits_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
