# Empty dependencies file for rank_hits_test.
# This may be replaced when dependencies are built.
