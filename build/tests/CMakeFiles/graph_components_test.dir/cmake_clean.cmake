file(REMOVE_RECURSE
  "CMakeFiles/graph_components_test.dir/graph_components_test.cpp.o"
  "CMakeFiles/graph_components_test.dir/graph_components_test.cpp.o.d"
  "graph_components_test"
  "graph_components_test.pdb"
  "graph_components_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_components_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
