file(REMOVE_RECURSE
  "CMakeFiles/overlay_chord_test.dir/overlay_chord_test.cpp.o"
  "CMakeFiles/overlay_chord_test.dir/overlay_chord_test.cpp.o.d"
  "overlay_chord_test"
  "overlay_chord_test.pdb"
  "overlay_chord_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overlay_chord_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
