file(REMOVE_RECURSE
  "CMakeFiles/engine_group_test.dir/engine_group_test.cpp.o"
  "CMakeFiles/engine_group_test.dir/engine_group_test.cpp.o.d"
  "engine_group_test"
  "engine_group_test.pdb"
  "engine_group_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_group_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
