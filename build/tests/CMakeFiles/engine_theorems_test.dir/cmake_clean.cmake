file(REMOVE_RECURSE
  "CMakeFiles/engine_theorems_test.dir/engine_theorems_test.cpp.o"
  "CMakeFiles/engine_theorems_test.dir/engine_theorems_test.cpp.o.d"
  "engine_theorems_test"
  "engine_theorems_test.pdb"
  "engine_theorems_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_theorems_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
