file(REMOVE_RECURSE
  "CMakeFiles/rank_gauss_seidel_test.dir/rank_gauss_seidel_test.cpp.o"
  "CMakeFiles/rank_gauss_seidel_test.dir/rank_gauss_seidel_test.cpp.o.d"
  "rank_gauss_seidel_test"
  "rank_gauss_seidel_test.pdb"
  "rank_gauss_seidel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rank_gauss_seidel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
