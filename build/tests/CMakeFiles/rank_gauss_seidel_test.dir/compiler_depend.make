# Empty compiler generated dependencies file for rank_gauss_seidel_test.
# This may be replaced when dependencies are built.
