file(REMOVE_RECURSE
  "CMakeFiles/engine_distributed_test.dir/engine_distributed_test.cpp.o"
  "CMakeFiles/engine_distributed_test.dir/engine_distributed_test.cpp.o.d"
  "engine_distributed_test"
  "engine_distributed_test.pdb"
  "engine_distributed_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_distributed_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
