# Empty dependencies file for p2prank.
# This may be replaced when dependencies are built.
