file(REMOVE_RECURSE
  "CMakeFiles/p2prank.dir/main.cpp.o"
  "CMakeFiles/p2prank.dir/main.cpp.o.d"
  "p2prank"
  "p2prank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2prank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
