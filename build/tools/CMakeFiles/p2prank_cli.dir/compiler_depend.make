# Empty compiler generated dependencies file for p2prank_cli.
# This may be replaced when dependencies are built.
