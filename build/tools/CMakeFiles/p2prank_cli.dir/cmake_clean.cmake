file(REMOVE_RECURSE
  "CMakeFiles/p2prank_cli.dir/cli.cpp.o"
  "CMakeFiles/p2prank_cli.dir/cli.cpp.o.d"
  "libp2prank_cli.a"
  "libp2prank_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2prank_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
