file(REMOVE_RECURSE
  "libp2prank_cli.a"
)
