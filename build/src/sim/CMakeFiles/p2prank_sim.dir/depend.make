# Empty dependencies file for p2prank_sim.
# This may be replaced when dependencies are built.
