file(REMOVE_RECURSE
  "CMakeFiles/p2prank_sim.dir/event_queue.cpp.o"
  "CMakeFiles/p2prank_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/p2prank_sim.dir/processes.cpp.o"
  "CMakeFiles/p2prank_sim.dir/processes.cpp.o.d"
  "libp2prank_sim.a"
  "libp2prank_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2prank_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
