file(REMOVE_RECURSE
  "libp2prank_sim.a"
)
