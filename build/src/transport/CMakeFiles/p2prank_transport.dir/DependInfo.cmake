
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transport/exchange.cpp" "src/transport/CMakeFiles/p2prank_transport.dir/exchange.cpp.o" "gcc" "src/transport/CMakeFiles/p2prank_transport.dir/exchange.cpp.o.d"
  "/root/repo/src/transport/wire.cpp" "src/transport/CMakeFiles/p2prank_transport.dir/wire.cpp.o" "gcc" "src/transport/CMakeFiles/p2prank_transport.dir/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/overlay/CMakeFiles/p2prank_overlay.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/p2prank_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
