file(REMOVE_RECURSE
  "libp2prank_transport.a"
)
