file(REMOVE_RECURSE
  "CMakeFiles/p2prank_transport.dir/exchange.cpp.o"
  "CMakeFiles/p2prank_transport.dir/exchange.cpp.o.d"
  "CMakeFiles/p2prank_transport.dir/wire.cpp.o"
  "CMakeFiles/p2prank_transport.dir/wire.cpp.o.d"
  "libp2prank_transport.a"
  "libp2prank_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2prank_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
