# Empty dependencies file for p2prank_transport.
# This may be replaced when dependencies are built.
