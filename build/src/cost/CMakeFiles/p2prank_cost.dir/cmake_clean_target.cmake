file(REMOVE_RECURSE
  "libp2prank_cost.a"
)
