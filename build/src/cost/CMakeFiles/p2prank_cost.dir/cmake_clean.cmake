file(REMOVE_RECURSE
  "CMakeFiles/p2prank_cost.dir/capacity_model.cpp.o"
  "CMakeFiles/p2prank_cost.dir/capacity_model.cpp.o.d"
  "libp2prank_cost.a"
  "libp2prank_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2prank_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
