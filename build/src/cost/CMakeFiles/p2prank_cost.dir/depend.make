# Empty dependencies file for p2prank_cost.
# This may be replaced when dependencies are built.
