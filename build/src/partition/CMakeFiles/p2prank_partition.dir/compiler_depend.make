# Empty compiler generated dependencies file for p2prank_partition.
# This may be replaced when dependencies are built.
