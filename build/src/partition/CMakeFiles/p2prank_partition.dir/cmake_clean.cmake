file(REMOVE_RECURSE
  "CMakeFiles/p2prank_partition.dir/partition_stats.cpp.o"
  "CMakeFiles/p2prank_partition.dir/partition_stats.cpp.o.d"
  "CMakeFiles/p2prank_partition.dir/partitioner.cpp.o"
  "CMakeFiles/p2prank_partition.dir/partitioner.cpp.o.d"
  "libp2prank_partition.a"
  "libp2prank_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2prank_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
