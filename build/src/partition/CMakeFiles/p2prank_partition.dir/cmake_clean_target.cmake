file(REMOVE_RECURSE
  "libp2prank_partition.a"
)
