# Empty compiler generated dependencies file for p2prank_util.
# This may be replaced when dependencies are built.
