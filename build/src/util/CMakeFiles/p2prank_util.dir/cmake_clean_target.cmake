file(REMOVE_RECURSE
  "libp2prank_util.a"
)
