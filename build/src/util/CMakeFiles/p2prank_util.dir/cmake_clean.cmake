file(REMOVE_RECURSE
  "CMakeFiles/p2prank_util.dir/hash.cpp.o"
  "CMakeFiles/p2prank_util.dir/hash.cpp.o.d"
  "CMakeFiles/p2prank_util.dir/histogram.cpp.o"
  "CMakeFiles/p2prank_util.dir/histogram.cpp.o.d"
  "CMakeFiles/p2prank_util.dir/stats.cpp.o"
  "CMakeFiles/p2prank_util.dir/stats.cpp.o.d"
  "CMakeFiles/p2prank_util.dir/table.cpp.o"
  "CMakeFiles/p2prank_util.dir/table.cpp.o.d"
  "CMakeFiles/p2prank_util.dir/thread_pool.cpp.o"
  "CMakeFiles/p2prank_util.dir/thread_pool.cpp.o.d"
  "libp2prank_util.a"
  "libp2prank_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2prank_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
