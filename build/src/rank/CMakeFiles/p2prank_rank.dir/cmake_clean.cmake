file(REMOVE_RECURSE
  "CMakeFiles/p2prank_rank.dir/acceleration.cpp.o"
  "CMakeFiles/p2prank_rank.dir/acceleration.cpp.o.d"
  "CMakeFiles/p2prank_rank.dir/centralized.cpp.o"
  "CMakeFiles/p2prank_rank.dir/centralized.cpp.o.d"
  "CMakeFiles/p2prank_rank.dir/gauss_seidel.cpp.o"
  "CMakeFiles/p2prank_rank.dir/gauss_seidel.cpp.o.d"
  "CMakeFiles/p2prank_rank.dir/hits.cpp.o"
  "CMakeFiles/p2prank_rank.dir/hits.cpp.o.d"
  "CMakeFiles/p2prank_rank.dir/link_matrix.cpp.o"
  "CMakeFiles/p2prank_rank.dir/link_matrix.cpp.o.d"
  "CMakeFiles/p2prank_rank.dir/open_system.cpp.o"
  "CMakeFiles/p2prank_rank.dir/open_system.cpp.o.d"
  "libp2prank_rank.a"
  "libp2prank_rank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2prank_rank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
