file(REMOVE_RECURSE
  "libp2prank_rank.a"
)
