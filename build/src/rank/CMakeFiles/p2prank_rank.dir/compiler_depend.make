# Empty compiler generated dependencies file for p2prank_rank.
# This may be replaced when dependencies are built.
