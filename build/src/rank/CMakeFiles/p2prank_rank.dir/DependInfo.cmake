
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rank/acceleration.cpp" "src/rank/CMakeFiles/p2prank_rank.dir/acceleration.cpp.o" "gcc" "src/rank/CMakeFiles/p2prank_rank.dir/acceleration.cpp.o.d"
  "/root/repo/src/rank/centralized.cpp" "src/rank/CMakeFiles/p2prank_rank.dir/centralized.cpp.o" "gcc" "src/rank/CMakeFiles/p2prank_rank.dir/centralized.cpp.o.d"
  "/root/repo/src/rank/gauss_seidel.cpp" "src/rank/CMakeFiles/p2prank_rank.dir/gauss_seidel.cpp.o" "gcc" "src/rank/CMakeFiles/p2prank_rank.dir/gauss_seidel.cpp.o.d"
  "/root/repo/src/rank/hits.cpp" "src/rank/CMakeFiles/p2prank_rank.dir/hits.cpp.o" "gcc" "src/rank/CMakeFiles/p2prank_rank.dir/hits.cpp.o.d"
  "/root/repo/src/rank/link_matrix.cpp" "src/rank/CMakeFiles/p2prank_rank.dir/link_matrix.cpp.o" "gcc" "src/rank/CMakeFiles/p2prank_rank.dir/link_matrix.cpp.o.d"
  "/root/repo/src/rank/open_system.cpp" "src/rank/CMakeFiles/p2prank_rank.dir/open_system.cpp.o" "gcc" "src/rank/CMakeFiles/p2prank_rank.dir/open_system.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/p2prank_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/p2prank_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
