file(REMOVE_RECURSE
  "libp2prank_engine.a"
)
