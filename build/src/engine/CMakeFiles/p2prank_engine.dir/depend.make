# Empty dependencies file for p2prank_engine.
# This may be replaced when dependencies are built.
