file(REMOVE_RECURSE
  "CMakeFiles/p2prank_engine.dir/checkpoint.cpp.o"
  "CMakeFiles/p2prank_engine.dir/checkpoint.cpp.o.d"
  "CMakeFiles/p2prank_engine.dir/distributed.cpp.o"
  "CMakeFiles/p2prank_engine.dir/distributed.cpp.o.d"
  "CMakeFiles/p2prank_engine.dir/page_group.cpp.o"
  "CMakeFiles/p2prank_engine.dir/page_group.cpp.o.d"
  "CMakeFiles/p2prank_engine.dir/reference.cpp.o"
  "CMakeFiles/p2prank_engine.dir/reference.cpp.o.d"
  "libp2prank_engine.a"
  "libp2prank_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2prank_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
