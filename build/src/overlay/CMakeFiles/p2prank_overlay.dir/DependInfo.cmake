
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/overlay/can.cpp" "src/overlay/CMakeFiles/p2prank_overlay.dir/can.cpp.o" "gcc" "src/overlay/CMakeFiles/p2prank_overlay.dir/can.cpp.o.d"
  "/root/repo/src/overlay/chord.cpp" "src/overlay/CMakeFiles/p2prank_overlay.dir/chord.cpp.o" "gcc" "src/overlay/CMakeFiles/p2prank_overlay.dir/chord.cpp.o.d"
  "/root/repo/src/overlay/node_id.cpp" "src/overlay/CMakeFiles/p2prank_overlay.dir/node_id.cpp.o" "gcc" "src/overlay/CMakeFiles/p2prank_overlay.dir/node_id.cpp.o.d"
  "/root/repo/src/overlay/overlay.cpp" "src/overlay/CMakeFiles/p2prank_overlay.dir/overlay.cpp.o" "gcc" "src/overlay/CMakeFiles/p2prank_overlay.dir/overlay.cpp.o.d"
  "/root/repo/src/overlay/pastry.cpp" "src/overlay/CMakeFiles/p2prank_overlay.dir/pastry.cpp.o" "gcc" "src/overlay/CMakeFiles/p2prank_overlay.dir/pastry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/p2prank_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
