file(REMOVE_RECURSE
  "CMakeFiles/p2prank_overlay.dir/can.cpp.o"
  "CMakeFiles/p2prank_overlay.dir/can.cpp.o.d"
  "CMakeFiles/p2prank_overlay.dir/chord.cpp.o"
  "CMakeFiles/p2prank_overlay.dir/chord.cpp.o.d"
  "CMakeFiles/p2prank_overlay.dir/node_id.cpp.o"
  "CMakeFiles/p2prank_overlay.dir/node_id.cpp.o.d"
  "CMakeFiles/p2prank_overlay.dir/overlay.cpp.o"
  "CMakeFiles/p2prank_overlay.dir/overlay.cpp.o.d"
  "CMakeFiles/p2prank_overlay.dir/pastry.cpp.o"
  "CMakeFiles/p2prank_overlay.dir/pastry.cpp.o.d"
  "libp2prank_overlay.a"
  "libp2prank_overlay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2prank_overlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
