file(REMOVE_RECURSE
  "libp2prank_overlay.a"
)
