# Empty dependencies file for p2prank_overlay.
# This may be replaced when dependencies are built.
