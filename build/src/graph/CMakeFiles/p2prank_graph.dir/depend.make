# Empty dependencies file for p2prank_graph.
# This may be replaced when dependencies are built.
