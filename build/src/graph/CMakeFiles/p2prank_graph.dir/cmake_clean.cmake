file(REMOVE_RECURSE
  "CMakeFiles/p2prank_graph.dir/components.cpp.o"
  "CMakeFiles/p2prank_graph.dir/components.cpp.o.d"
  "CMakeFiles/p2prank_graph.dir/graph_builder.cpp.o"
  "CMakeFiles/p2prank_graph.dir/graph_builder.cpp.o.d"
  "CMakeFiles/p2prank_graph.dir/graph_io.cpp.o"
  "CMakeFiles/p2prank_graph.dir/graph_io.cpp.o.d"
  "CMakeFiles/p2prank_graph.dir/graph_stats.cpp.o"
  "CMakeFiles/p2prank_graph.dir/graph_stats.cpp.o.d"
  "CMakeFiles/p2prank_graph.dir/graph_updates.cpp.o"
  "CMakeFiles/p2prank_graph.dir/graph_updates.cpp.o.d"
  "CMakeFiles/p2prank_graph.dir/random_graphs.cpp.o"
  "CMakeFiles/p2prank_graph.dir/random_graphs.cpp.o.d"
  "CMakeFiles/p2prank_graph.dir/synthetic_web.cpp.o"
  "CMakeFiles/p2prank_graph.dir/synthetic_web.cpp.o.d"
  "CMakeFiles/p2prank_graph.dir/url.cpp.o"
  "CMakeFiles/p2prank_graph.dir/url.cpp.o.d"
  "CMakeFiles/p2prank_graph.dir/web_graph.cpp.o"
  "CMakeFiles/p2prank_graph.dir/web_graph.cpp.o.d"
  "libp2prank_graph.a"
  "libp2prank_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2prank_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
