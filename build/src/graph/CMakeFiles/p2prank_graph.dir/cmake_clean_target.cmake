file(REMOVE_RECURSE
  "libp2prank_graph.a"
)
