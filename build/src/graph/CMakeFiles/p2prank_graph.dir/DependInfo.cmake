
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/components.cpp" "src/graph/CMakeFiles/p2prank_graph.dir/components.cpp.o" "gcc" "src/graph/CMakeFiles/p2prank_graph.dir/components.cpp.o.d"
  "/root/repo/src/graph/graph_builder.cpp" "src/graph/CMakeFiles/p2prank_graph.dir/graph_builder.cpp.o" "gcc" "src/graph/CMakeFiles/p2prank_graph.dir/graph_builder.cpp.o.d"
  "/root/repo/src/graph/graph_io.cpp" "src/graph/CMakeFiles/p2prank_graph.dir/graph_io.cpp.o" "gcc" "src/graph/CMakeFiles/p2prank_graph.dir/graph_io.cpp.o.d"
  "/root/repo/src/graph/graph_stats.cpp" "src/graph/CMakeFiles/p2prank_graph.dir/graph_stats.cpp.o" "gcc" "src/graph/CMakeFiles/p2prank_graph.dir/graph_stats.cpp.o.d"
  "/root/repo/src/graph/graph_updates.cpp" "src/graph/CMakeFiles/p2prank_graph.dir/graph_updates.cpp.o" "gcc" "src/graph/CMakeFiles/p2prank_graph.dir/graph_updates.cpp.o.d"
  "/root/repo/src/graph/random_graphs.cpp" "src/graph/CMakeFiles/p2prank_graph.dir/random_graphs.cpp.o" "gcc" "src/graph/CMakeFiles/p2prank_graph.dir/random_graphs.cpp.o.d"
  "/root/repo/src/graph/synthetic_web.cpp" "src/graph/CMakeFiles/p2prank_graph.dir/synthetic_web.cpp.o" "gcc" "src/graph/CMakeFiles/p2prank_graph.dir/synthetic_web.cpp.o.d"
  "/root/repo/src/graph/url.cpp" "src/graph/CMakeFiles/p2prank_graph.dir/url.cpp.o" "gcc" "src/graph/CMakeFiles/p2prank_graph.dir/url.cpp.o.d"
  "/root/repo/src/graph/web_graph.cpp" "src/graph/CMakeFiles/p2prank_graph.dir/web_graph.cpp.o" "gcc" "src/graph/CMakeFiles/p2prank_graph.dir/web_graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/p2prank_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
