# Empty compiler generated dependencies file for p2prank_crawl.
# This may be replaced when dependencies are built.
