file(REMOVE_RECURSE
  "CMakeFiles/p2prank_crawl.dir/crawler.cpp.o"
  "CMakeFiles/p2prank_crawl.dir/crawler.cpp.o.d"
  "libp2prank_crawl.a"
  "libp2prank_crawl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2prank_crawl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
