file(REMOVE_RECURSE
  "libp2prank_crawl.a"
)
